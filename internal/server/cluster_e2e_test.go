package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// TestClusterE2E is the process-level proof of the scale-out tier: two
// real edge ldpserver processes and one real coordinator process, with
// one edge SIGKILLed mid-run and restarted from its data directory. The
// coordinator must converge to exactly the union of both edges' durable
// state, and its view must serve it.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	build := exec.Command("go", "build", "-o", bin, "ldpmarginals/cmd/ldpserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldpserver: %v\n%s", err, out)
	}

	edgeDirs := [2]string{t.TempDir(), t.TempDir()}
	edgeAddrs := [2]string{freeAddr(t), freeAddr(t)}
	coordAddr := freeAddr(t)
	coordDir := t.TempDir()

	startEdge := func(i int) *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", edgeAddrs[i],
			"-role", "edge", "-node-id", fmt.Sprintf("edge-%d", i),
			"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
			"-data-dir", edgeDirs[i], "-fsync", "always",
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting edge %d: %v", i, err)
		}
		waitHealthy(t, edgeAddrs[i])
		return cmd
	}
	edges := [2]*exec.Cmd{startEdge(0), startEdge(1)}
	defer func() {
		for _, e := range edges {
			if e != nil && e.Process != nil {
				_ = e.Process.Kill()
			}
		}
	}()

	coord := exec.Command(bin,
		"-addr", coordAddr,
		"-role", "coordinator", "-node-id", "coord",
		"-peers", "http://"+edgeAddrs[0]+",http://"+edgeAddrs[1],
		"-pull-interval", "100ms",
		"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
		"-data-dir", coordDir,
		"-refresh-interval", "0", "-refresh-every-n", "0",
	)
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	defer func() { _ = coord.Process.Kill() }()
	waitHealthy(t, coordAddr)

	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(123)
	makeBatch := func(n int) []byte {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	post := func(addr string, body []byte) bool {
		resp, err := http.Post("http://"+addr+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var br BatchResponse
		return json.NewDecoder(resp.Body).Decode(&br) == nil && resp.StatusCode == http.StatusOK
	}

	// Phase 1: both edges ingest; acked batches are durable (fsync
	// always).
	if !post(edgeAddrs[0], makeBatch(1500)) || !post(edgeAddrs[1], makeBatch(1200)) {
		t.Fatal("phase-1 batches not acked")
	}

	// Phase 2: SIGKILL edge 0 mid-run while ingestion continues on it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if !post(edgeAddrs[0], makeBatch(100)) {
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := edges[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = edges[0].Wait()

	// Phase 3: restart the killed edge from its directory; the fleet
	// must converge to exactly edge0.N + edge1.N.
	edges[0] = startEdge(0)
	if !post(edgeAddrs[0], makeBatch(300)) {
		t.Fatal("post-restart batch not acked")
	}
	edgeN := func(addr string) int {
		var sr StatusResponse
		resp, err := http.Get("http://" + addr + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr.N
	}
	wantN := edgeN(edgeAddrs[0]) + edgeN(edgeAddrs[1])

	deadline := time.Now().Add(15 * time.Second)
	var gotN int
	for time.Now().Before(deadline) {
		gotN = edgeN(coordAddr) // coordinator /status n is fleet-wide
		if gotN == wantN {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if gotN != wantN {
		t.Fatalf("coordinator converged to %d reports, want %d", gotN, wantN)
	}

	// The converged fleet serves: refresh and read a marginal over it.
	resp, err := http.Post("http://"+coordAddr+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var vs ViewStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vs.ViewN != wantN {
		t.Fatalf("coordinator epoch holds %d reports, want %d", vs.ViewN, wantN)
	}
	if len(vs.Peers) != 2 {
		t.Fatalf("view/status peers = %+v, want 2", vs.Peers)
	}
	mresp, err := http.Get("http://" + coordAddr + "/marginal?beta=3")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MarginalResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("marginal over the fleet: status %d err %v", mresp.StatusCode, err)
	}
	if len(mr.Cells) != 4 || mr.N != wantN {
		t.Fatalf("marginal response = %+v, want n=%d", mr, wantN)
	}
}

// TestClusterThreeTierE2E is the process-level proof of hierarchical
// fan-in: two real edges pulled by a real mid-tier coordinator, itself
// pulled by a real root coordinator — with the MID TIER SIGKILLed and
// restarted from its data directory while the edges keep ingesting. The
// root must converge to the edges' exact union through the recovered mid
// tier, with the edges' pass-through components intact.
func TestClusterThreeTierE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	build := exec.Command("go", "build", "-o", bin, "ldpmarginals/cmd/ldpserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldpserver: %v\n%s", err, out)
	}

	edgeAddrs := [2]string{freeAddr(t), freeAddr(t)}
	midAddr, rootAddr := freeAddr(t), freeAddr(t)
	midDir := t.TempDir()
	protoFlags := []string{"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1"}

	startNode := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, append(args, protoFlags...)...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %v: %v", args, err)
		}
		return cmd
	}
	edges := [2]*exec.Cmd{
		startNode("-addr", edgeAddrs[0], "-role", "edge", "-node-id", "edge-0", "-shards", "4"),
		startNode("-addr", edgeAddrs[1], "-role", "edge", "-node-id", "edge-1", "-shards", "4"),
	}
	defer func() {
		for _, e := range edges {
			if e != nil && e.Process != nil {
				_ = e.Process.Kill()
			}
		}
	}()
	waitHealthy(t, edgeAddrs[0])
	waitHealthy(t, edgeAddrs[1])

	startMid := func() *exec.Cmd {
		cmd := startNode("-addr", midAddr,
			"-role", "coordinator", "-node-id", "mid",
			"-peers", "http://"+edgeAddrs[0]+",http://"+edgeAddrs[1],
			"-pull-interval", "100ms", "-data-dir", midDir,
			"-refresh-interval", "0", "-refresh-every-n", "0")
		waitHealthy(t, midAddr)
		return cmd
	}
	mid := startMid()
	defer func() {
		if mid != nil && mid.Process != nil {
			_ = mid.Process.Kill()
		}
	}()
	root := startNode("-addr", rootAddr,
		"-role", "coordinator", "-node-id", "root",
		"-peers", "http://"+midAddr,
		"-pull-interval", "100ms",
		"-refresh-interval", "0", "-refresh-every-n", "0")
	defer func() { _ = root.Process.Kill() }()
	waitHealthy(t, rootAddr)

	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(321)
	makeBatch := func(n int) []byte {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	post := func(addr string, body []byte) bool {
		resp, err := http.Post("http://"+addr+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	statusN := func(addr string) int {
		var sr StatusResponse
		resp, err := http.Get("http://" + addr + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr.N
	}
	waitN := func(addr string, want int, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		got := -1
		for time.Now().Before(deadline) {
			got = statusN(addr)
			if got == want {
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("%s converged to %d reports, want %d", what, got, want)
	}

	// Phase 1: both edges ingest; the counts flow edge -> mid -> root.
	if !post(edgeAddrs[0], makeBatch(900)) || !post(edgeAddrs[1], makeBatch(700)) {
		t.Fatal("phase-1 batches not acked")
	}
	waitN(rootAddr, 1600, "root (phase 1)")

	// Phase 2: SIGKILL the mid tier while the edges keep ingesting. The
	// root keeps serving its last accepted state meanwhile.
	if err := mid.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = mid.Wait()
	if !post(edgeAddrs[0], makeBatch(400)) || !post(edgeAddrs[1], makeBatch(250)) {
		t.Fatal("mid-outage batches not acked")
	}
	if got := statusN(rootAddr); got != 1600 {
		t.Fatalf("root served %d during the mid-tier outage, want the last accepted 1600", got)
	}

	// Phase 3: restart the mid tier from its data directory. It recovers
	// its persisted peer states, re-pulls the edges' growth (as deltas —
	// the edges survived, so the persisted bases still match), and the
	// root converges through it.
	mid = startMid()
	waitN(rootAddr, 2250, "root (post mid-tier restart)")

	// The root's accepted state decomposes into the edges' pass-through
	// shard components, proving the mid tier is transparent.
	var cs StatusResponse
	resp, err := http.Get("http://" + rootAddr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.Cluster == nil || len(cs.Cluster.Peers) != 1 {
		t.Fatalf("root cluster status = %+v, want one mid-tier peer", cs.Cluster)
	}
	if pe := cs.Cluster.Peers[0]; pe.NodeID != "mid" || pe.Components < 2 {
		t.Fatalf("root peer = %+v, want node mid with the edges' shard components", pe)
	}

	// The converged fleet serves a marginal through both tiers.
	if _, err := http.Post("http://"+rootAddr+"/refresh", "", nil); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Get("http://" + rootAddr + "/marginal?beta=3")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MarginalResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("marginal through two tiers: status %d err %v", mresp.StatusCode, err)
	}
	if mr.N != 2250 {
		t.Fatalf("marginal over n=%d, want 2250", mr.N)
	}
}
