package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// TestClusterE2E is the process-level proof of the scale-out tier: two
// real edge ldpserver processes and one real coordinator process, with
// one edge SIGKILLed mid-run and restarted from its data directory. The
// coordinator must converge to exactly the union of both edges' durable
// state, and its view must serve it.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	build := exec.Command("go", "build", "-o", bin, "ldpmarginals/cmd/ldpserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldpserver: %v\n%s", err, out)
	}

	edgeDirs := [2]string{t.TempDir(), t.TempDir()}
	edgeAddrs := [2]string{freeAddr(t), freeAddr(t)}
	coordAddr := freeAddr(t)
	coordDir := t.TempDir()

	startEdge := func(i int) *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", edgeAddrs[i],
			"-role", "edge", "-node-id", fmt.Sprintf("edge-%d", i),
			"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
			"-data-dir", edgeDirs[i], "-fsync", "always",
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting edge %d: %v", i, err)
		}
		waitHealthy(t, edgeAddrs[i])
		return cmd
	}
	edges := [2]*exec.Cmd{startEdge(0), startEdge(1)}
	defer func() {
		for _, e := range edges {
			if e != nil && e.Process != nil {
				_ = e.Process.Kill()
			}
		}
	}()

	coord := exec.Command(bin,
		"-addr", coordAddr,
		"-role", "coordinator", "-node-id", "coord",
		"-peers", "http://"+edgeAddrs[0]+",http://"+edgeAddrs[1],
		"-pull-interval", "100ms",
		"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
		"-data-dir", coordDir,
		"-refresh-interval", "0", "-refresh-every-n", "0",
	)
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	defer func() { _ = coord.Process.Kill() }()
	waitHealthy(t, coordAddr)

	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(123)
	makeBatch := func(n int) []byte {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	post := func(addr string, body []byte) bool {
		resp, err := http.Post("http://"+addr+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var br BatchResponse
		return json.NewDecoder(resp.Body).Decode(&br) == nil && resp.StatusCode == http.StatusOK
	}

	// Phase 1: both edges ingest; acked batches are durable (fsync
	// always).
	if !post(edgeAddrs[0], makeBatch(1500)) || !post(edgeAddrs[1], makeBatch(1200)) {
		t.Fatal("phase-1 batches not acked")
	}

	// Phase 2: SIGKILL edge 0 mid-run while ingestion continues on it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if !post(edgeAddrs[0], makeBatch(100)) {
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := edges[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = edges[0].Wait()

	// Phase 3: restart the killed edge from its directory; the fleet
	// must converge to exactly edge0.N + edge1.N.
	edges[0] = startEdge(0)
	if !post(edgeAddrs[0], makeBatch(300)) {
		t.Fatal("post-restart batch not acked")
	}
	edgeN := func(addr string) int {
		var sr StatusResponse
		resp, err := http.Get("http://" + addr + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr.N
	}
	wantN := edgeN(edgeAddrs[0]) + edgeN(edgeAddrs[1])

	deadline := time.Now().Add(15 * time.Second)
	var gotN int
	for time.Now().Before(deadline) {
		gotN = edgeN(coordAddr) // coordinator /status n is fleet-wide
		if gotN == wantN {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if gotN != wantN {
		t.Fatalf("coordinator converged to %d reports, want %d", gotN, wantN)
	}

	// The converged fleet serves: refresh and read a marginal over it.
	resp, err := http.Post("http://"+coordAddr+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var vs ViewStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vs.ViewN != wantN {
		t.Fatalf("coordinator epoch holds %d reports, want %d", vs.ViewN, wantN)
	}
	if len(vs.Peers) != 2 {
		t.Fatalf("view/status peers = %+v, want 2", vs.Peers)
	}
	mresp, err := http.Get("http://" + coordAddr + "/marginal?beta=3")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MarginalResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("marginal over the fleet: status %d err %v", mresp.StatusCode, err)
	}
	if len(mr.Cells) != 4 || mr.N != wantN {
		t.Fatalf("marginal response = %+v, want n=%d", mr, wantN)
	}
}
