package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/view"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, core.Protocol) {
	t.Helper()
	return newTestServerWithOptions(t, Options{})
}

func newTestServerWithOptions(t *testing.T, opts Options) (*Server, *httptest.Server, core.Protocol) {
	t.Helper()
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, p
}

// postRefresh publishes a fresh epoch so reads observe everything
// ingested so far — the explicit step the epoch model introduces between
// writing and reading.
func postRefresh(t *testing.T, url string) ViewStatusResponse {
	t.Helper()
	resp, err := http.Post(url+"/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}
	var vs ViewStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	return vs
}

func postReport(t *testing.T, url string, p core.Protocol, rep core.Report) *http.Response {
	t.Helper()
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestEndToEndDeployment(t *testing.T) {
	s, ts, p := newTestServer(t)
	ds := dataset.NewTaxi(3000, 1)
	client := p.NewClient()
	r := rng.New(2)
	for _, rec := range ds.Records {
		rep, err := client.Perturb(rec, r)
		if err != nil {
			t.Fatal(err)
		}
		resp := postReport(t, ts.URL, p, rep)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report rejected with %d", resp.StatusCode)
		}
	}
	if s.N() != ds.N() {
		t.Fatalf("server consumed %d reports, want %d", s.N(), ds.N())
	}
	postRefresh(t, ts.URL)

	beta := uint64(0b11)
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", ts.URL, beta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marginal query status %d", resp.StatusCode)
	}
	var got MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != ds.N() || got.Beta != beta || len(got.Cells) != 4 || got.Epoch < 2 {
		t.Fatalf("bad response: %+v", got)
	}
	exact, err := marginal.FromRecords(ds.Records, beta)
	if err != nil {
		t.Fatal(err)
	}
	est, err := marginal.FromCells(beta, got.Cells)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := est.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.15 {
		t.Errorf("deployed estimate TV = %v", tv)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Protocol != "InpHT" || st.D != 8 || st.K != 2 || st.ReportBits != 9 {
		t.Errorf("status = %+v", st)
	}
}

func TestRejectsWrongProtocolReport(t *testing.T) {
	_, ts, _ := newTestServer(t)
	frame, err := encoding.Marshal("MargPS", core.Report{Beta: 0b11, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-protocol report got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsMalformedFrame(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader([]byte{0xff, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed frame got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsInvalidReportContent(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Coefficient outside T (|alpha| > k).
	resp := postReport(t, ts.URL, p, core.Report{Index: 0b1111, Sign: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid report got %d, want 400", resp.StatusCode)
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report got %d, want 405", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/marginal?beta=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /marginal got %d, want 405", resp2.StatusCode)
	}
}

// TestMarginalQueryValidation pins the HTTP status mapping of /marginal:
// out-of-contract betas are 400s whose message names the violated limit
// (so an analyst learns the deployment's k or d without reading docs),
// and in-contract betas are 200s — even before any report arrives.
func TestMarginalQueryValidation(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Feed one report so the refreshed view has data.
	client := p.NewClient()
	rep, err := client.Perturb(5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	postReport(t, ts.URL, p, rep)
	postRefresh(t, ts.URL)
	cases := []struct {
		path    string
		status  int
		wantMsg string
	}{
		{"/marginal", http.StatusBadRequest, "decimal attribute mask"},          // missing beta
		{"/marginal?beta=abc", http.StatusBadRequest, "decimal attribute mask"}, // non-numeric
		{"/marginal?beta=0", http.StatusBadRequest, "empty attribute mask"},
		{"/marginal?beta=7", http.StatusBadRequest, "supports at most k=2"}, // |beta| > k
		{"/marginal?beta=1024", http.StatusBadRequest, "outside the deployment's 8 attributes"},
		{"/marginal?beta=3", http.StatusOK, ""},
		{"/marginal?beta=129", http.StatusOK, ""}, // non-adjacent pair
		{"/marginal?beta=4", http.StatusOK, ""},   // 1-way sub-marginal
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s got %d (%q), want %d", tc.path, resp.StatusCode, body, tc.status)
		}
		if tc.wantMsg != "" && !strings.Contains(string(body), tc.wantMsg) {
			t.Errorf("%s error %q does not name the limit %q", tc.path, body, tc.wantMsg)
		}
	}
}

func TestConcurrentReporters(t *testing.T) {
	s, ts, p := newTestServer(t)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := p.NewClient()
			r := rng.New(uint64(w) + 10)
			for i := 0; i < perWorker; i++ {
				rep, err := client.Perturb(uint64(i%256), r)
				if err != nil {
					errs <- err
					return
				}
				frame, err := encoding.Marshal(p.Name(), rep)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.N() != workers*perWorker {
		t.Errorf("consumed %d reports, want %d", s.N(), workers*perWorker)
	}
}

// TestBatchEndpoint posts one batch and checks the accepted count and
// that the resulting estimate is byte-identical to a sequential
// aggregator fed the same reports.
func TestBatchEndpoint(t *testing.T) {
	s, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(7)
	seq := p.NewAggregator()
	var reps []core.Report
	for i := 0; i < 500; i++ {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		if err := seq.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch post status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != len(reps) || s.N() != len(reps) {
		t.Fatalf("accepted %d, server N %d, want %d", br.Accepted, s.N(), len(reps))
	}
	postRefresh(t, ts.URL)
	assertMarginalMatches(t, ts.URL, p, seq, 0b11)
}

// assertMarginalMatches fetches /marginal?beta and requires the cells to
// be bit-identical to a view built from want by the same pipeline the
// server runs — integer-counter aggregation makes shard partitioning
// invisible in the snapshot, and the view build is deterministic on top
// of it.
func assertMarginalMatches(t *testing.T, url string, p core.Protocol, want core.Aggregator, beta uint64) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", url, beta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marginal query status %d", resp.StatusCode)
	}
	var got MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	refView, err := view.Build(want, p, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refView.Marginal(beta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(ref.Cells) {
		t.Fatalf("got %d cells, want %d", len(got.Cells), len(ref.Cells))
	}
	for c := range ref.Cells {
		if math.Float64bits(got.Cells[c]) != math.Float64bits(ref.Cells[c]) {
			t.Fatalf("cell %d: got %v, want %v", c, got.Cells[c], ref.Cells[c])
		}
	}
}

// TestBatchRejectsMalformedAndMixed covers the batch-specific error
// paths: truncated framing, mixed protocol tags, and wrong-protocol
// batches.
func TestBatchRejectsMalformedAndMixed(t *testing.T) {
	_, ts, p := newTestServer(t)
	good, err := encoding.Marshal(p.Name(), core.Report{Index: 0b1, Sign: 1})
	if err != nil {
		t.Fatal(err)
	}
	other, err := encoding.Marshal("MargPS", core.Report{Beta: 0b11, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      {0x09, 0x01},
		"mixed tags":     append(encoding.AppendFrame(nil, good), encoding.AppendFrame(nil, other)...),
		"wrong protocol": encoding.AppendFrame(nil, other),
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch got %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestBatchRejectionReportsBatchIndex posts a batch whose only invalid
// report sits at a known position and checks the error names that
// batch-global position, not a chunk-relative one.
func TestBatchRejectionReportsBatchIndex(t *testing.T) {
	s, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(31)
	var reps []core.Report
	for i := 0; i < 5; i++ {
		rep, err := client.Perturb(uint64(i), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	reps[3] = core.Report{Index: 0b11111111, Sign: 1} // |alpha| > k: invalid
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.Unmarshal(msg, &br); err != nil {
		t.Fatalf("rejection body %q is not a BatchResponse: %v", msg, err)
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(br.Error, "batch report 3") {
		t.Fatalf("status %d, message %q; want 400 naming batch report 3", resp.StatusCode, msg)
	}
	if br.Accepted != 3 || s.N() != 3 {
		t.Fatalf("accepted=%d N=%d after partial batch, want 3 (reports before the rejection)", br.Accepted, s.N())
	}
}

// TestBatchRejectionReportsLowestIndex posts a batch with invalid
// reports in two different 1024-report chunks; whichever chunk fails
// first in wall-clock time, the reply must name the lowest-index
// rejection.
func TestBatchRejectionReportsLowestIndex(t *testing.T) {
	_, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(37)
	reps := make([]core.Report, 3000)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	bad := core.Report{Index: 0b11111111, Sign: 1}
	reps[10], reps[2000] = bad, bad // chunks 0 and 1
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(br.Error, "batch report 10") {
		t.Fatalf("status %d, error %q; want 400 naming batch report 10", resp.StatusCode, br.Error)
	}
}

// TestStressInterleavedReportAndBatch hammers the deployment with 32
// goroutines mixing single /report posts and /report/batch posts, then
// asserts the final count and that the marginal is byte-identical to a
// sequential aggregator fed exactly the same reports. Run under
// `go test -race` this is the race certification of the sharded
// ingestion path.
func TestStressInterleavedReportAndBatch(t *testing.T) {
	s, ts, p := newTestServer(t)
	const (
		workers      = 32
		batchesPer   = 6
		batchSize    = 40
		singlesPer   = 25
		perWorker    = batchesPer*batchSize + singlesPer
		totalReports = workers * perWorker
	)
	// Pre-generate every worker's reports deterministically so a
	// sequential reference aggregator can consume the identical multiset.
	reports := make([][]core.Report, workers)
	for w := range reports {
		client := p.NewClient()
		r := rng.New(uint64(w) + 1000)
		for i := 0; i < perWorker; i++ {
			rep, err := client.Perturb(uint64((w*perWorker+i)%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reports[w] = append(reports[w], rep)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reps := reports[w]
			// Interleave: one batch, then a few singles, repeatedly.
			singles := reps[batchesPer*batchSize:]
			for b := 0; b < batchesPer; b++ {
				batch := reps[b*batchSize : (b+1)*batchSize]
				body, err := encoding.MarshalBatch(p.Name(), batch)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var br BatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					errs <- decErr
					return
				}
				// The per-request accepted count must reflect this
				// batch only, even with 31 other writers in flight.
				if br.Accepted != batchSize {
					errs <- fmt.Errorf("batch accepted %d, want %d", br.Accepted, batchSize)
					return
				}
				for i := 0; i < singlesPer/batchesPer && b*(singlesPer/batchesPer)+i < len(singles); i++ {
					rep := singles[b*(singlesPer/batchesPer)+i]
					frame, err := encoding.Marshal(p.Name(), rep)
					if err != nil {
						errs <- err
						return
					}
					resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						errs <- fmt.Errorf("report status %d", resp.StatusCode)
						return
					}
				}
			}
			// Whatever singles the interleaving loop above didn't reach.
			sent := batchesPer * (singlesPer / batchesPer)
			for _, rep := range singles[sent:] {
				frame, err := encoding.Marshal(p.Name(), rep)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("report status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.N() != totalReports {
		t.Fatalf("server consumed %d reports, want %d", s.N(), totalReports)
	}

	// The sequential reference over the same multiset must agree exactly.
	seq := p.NewAggregator()
	for _, reps := range reports {
		if err := seq.ConsumeBatch(reps); err != nil {
			t.Fatal(err)
		}
	}
	postRefresh(t, ts.URL)
	assertMarginalMatches(t, ts.URL, p, seq, 0b11)
	assertMarginalMatches(t, ts.URL, p, seq, 0b1100)

	// /status must agree with the lock-free counter.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.N != totalReports || st.Shards < 1 {
		t.Errorf("status N=%d shards=%d, want N=%d", st.N, st.Shards, totalReports)
	}
}

// TestQueryEndpoint posts reports, refreshes, and evaluates a batch of
// conjunctions — including malformed and out-of-domain ones, which must
// fail per-query without failing the batch — and checks the answers
// against the view built from an identical sequential aggregator.
func TestQueryEndpoint(t *testing.T) {
	s, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(11)
	seq := p.NewAggregator()
	var reps []core.Report
	for i := 0; i < 2000; i++ {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		if err := seq.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.N() != len(reps) {
		t.Fatalf("ingested %d, want %d", s.N(), len(reps))
	}
	postRefresh(t, ts.URL)

	queries := []string{
		"a0=1 AND a7=0",          // valid conjunction
		"a3=1",                   // single-term
		"a0=1 AND a1=1 AND a2=0", // 3 terms > k=2: per-query error
		"a0=banana",              // parse error
		"a99=1",                  // attribute out of domain
	}
	qBody, err := json.Marshal(QueryRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	qResp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(qBody))
	if err != nil {
		t.Fatal(err)
	}
	defer qResp.Body.Close()
	if qResp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qResp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(qResp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.N != len(reps) || len(qr.Results) != len(queries) {
		t.Fatalf("response n=%d results=%d, want n=%d results=%d", qr.N, len(qr.Results), len(reps), len(queries))
	}
	for i, res := range qr.Results[:2] {
		if res.Error != "" {
			t.Fatalf("valid query %d failed: %s", i, res.Error)
		}
		if math.Float64bits(res.Count) != math.Float64bits(res.Fraction*float64(len(reps))) {
			t.Errorf("query %d count %v does not match fraction %v * n", i, res.Count, res.Fraction)
		}
	}
	for i, res := range qr.Results[2:] {
		if res.Error == "" {
			t.Errorf("invalid query %d accepted: %+v", i+2, res)
		}
	}

	// Answers must be bit-identical to the reference view of the same
	// reports evaluated directly.
	refView, err := view.Build(seq, p, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:2] {
		c, err := query.Parse(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refView.Answer(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(qr.Results[i].Fraction) != math.Float64bits(want) {
			t.Errorf("query %q: got %v, want %v", q, qr.Results[i].Fraction, want)
		}
	}

	// Single-query shorthand.
	sResp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"q":"a0=1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer sResp.Body.Close()
	var sr QueryResponse
	if err := json.NewDecoder(sResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].Error != "" {
		t.Fatalf("single query: %+v", sr)
	}

	// Empty and malformed bodies are request-level 400s.
	for _, body := range []string{`{}`, `{"queries":[]}`, `not json`} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q got %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestViewStatusAndHealthz covers the observability endpoints: epoch
// advancement, staleness accounting, and the liveness probe.
func TestViewStatusAndHealthz(t *testing.T) {
	_, ts, p := newTestServer(t)

	getStatus := func() ViewStatusResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/view/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var vs ViewStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
			t.Fatal(err)
		}
		return vs
	}

	vs := getStatus()
	if vs.Epoch != 1 || vs.ViewN != 0 || vs.StalenessReports != 0 {
		t.Fatalf("initial view status %+v, want epoch 1 over 0 reports", vs)
	}

	// Ingest without refreshing: staleness grows, epoch stands still.
	client := p.NewClient()
	r := rng.New(3)
	for i := 0; i < 10; i++ {
		rep, err := client.Perturb(uint64(i), r)
		if err != nil {
			t.Fatal(err)
		}
		postReport(t, ts.URL, p, rep)
	}
	vs = getStatus()
	if vs.Epoch != 1 || vs.ViewN != 0 || vs.CurrentN != 10 || vs.StalenessReports != 10 {
		t.Fatalf("pre-refresh view status %+v, want epoch 1, staleness 10", vs)
	}

	// Refresh: the new epoch absorbs the backlog.
	rs := postRefresh(t, ts.URL)
	if rs.Epoch != 2 || rs.ViewN != 10 || rs.StalenessReports != 0 {
		t.Fatalf("post-refresh status %+v, want epoch 2 over 10 reports", rs)
	}
	if vs := getStatus(); vs.Epoch != 2 || vs.Tables != 36 { // C(8,2) + C(8,1)
		t.Fatalf("view status %+v, want epoch 2 with 36 tables", vs)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 2 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestStressViewRefreshConcurrentQuery is the race certification of the
// materialized-view read path: concurrent batch ingestion, explicit and
// policy-driven epoch refreshes, and 32 query readers hammering
// /marginal, /query, and /view/status simultaneously. Afterwards one
// final refresh must serve answers bit-identical to a sequential
// reference fed the same multiset.
func TestStressViewRefreshConcurrentQuery(t *testing.T) {
	s, ts, p := newTestServerWithOptions(t, Options{
		Refresh: view.Policy{EveryN: 500, Poll: 5 * time.Millisecond},
	})
	const (
		ingesters  = 8
		batchesPer = 8
		batchSize  = 100
		refreshers = 4
		readers    = 32
	)
	reports := make([][]core.Report, ingesters)
	for w := range reports {
		client := p.NewClient()
		r := rng.New(uint64(w) + 5000)
		for i := 0; i < batchesPer*batchSize; i++ {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reports[w] = append(reports[w], rep)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, ingesters+refreshers+readers)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				body, err := encoding.MarshalBatch(p.Name(), reports[w][b*batchSize:(b+1)*batchSize])
				if err != nil {
					fail(err)
					return
				}
				resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					fail(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("batch status %d", resp.StatusCode))
					return
				}
			}
		}(w)
	}
	for w := 0; w < refreshers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/refresh", "", nil)
				if err != nil {
					fail(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("refresh status %d", resp.StatusCode))
					return
				}
			}
		}()
	}
	readerDone := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				switch w % 3 {
				case 0:
					resp, err = http.Get(ts.URL + "/marginal?beta=3")
				case 1:
					resp, err = http.Post(ts.URL+"/query", "application/json",
						strings.NewReader(`{"queries":["a0=1 AND a1=0","a5=1"]}`))
				default:
					resp, err = http.Get(ts.URL + "/view/status")
				}
				if err != nil {
					fail(err)
					return
				}
				var got struct {
					Epoch int64 `json:"epoch"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("reader %d status %d", w, resp.StatusCode))
					return
				}
				if decErr != nil {
					fail(decErr)
					return
				}
				if got.Epoch < 1 {
					fail(fmt.Errorf("reader %d observed unpublished epoch %d", w, got.Epoch))
					return
				}
			}
		}(w)
	}
	go func() { defer close(readerDone); wg.Wait() }()

	// Let writers and refreshers finish, then release the readers.
	deadline := time.After(60 * time.Second)
	total := ingesters * batchesPer * batchSize
	for s.N() < total {
		select {
		case <-deadline:
			close(stop)
			t.Fatalf("ingestion stalled at %d/%d", s.N(), total)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-readerDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seq := p.NewAggregator()
	for _, reps := range reports {
		if err := seq.ConsumeBatch(reps); err != nil {
			t.Fatal(err)
		}
	}
	vs := postRefresh(t, ts.URL)
	if vs.ViewN != total {
		t.Fatalf("final epoch over %d reports, want %d", vs.ViewN, total)
	}
	assertMarginalMatches(t, ts.URL, p, seq, 0b11)
	assertMarginalMatches(t, ts.URL, p, seq, 0b10000001)
}

func TestNewRejectsUnknownProtocol(t *testing.T) {
	if _, err := New(fakeProtocol{}); err == nil {
		t.Error("protocol without a wire tag should be rejected")
	}
}

type fakeProtocol struct{ core.Protocol }

func (fakeProtocol) Name() string { return "Mystery" }
