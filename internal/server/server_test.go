package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, core.Protocol) {
	t.Helper()
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, p
}

func postReport(t *testing.T, url string, p core.Protocol, rep core.Report) *http.Response {
	t.Helper()
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestEndToEndDeployment(t *testing.T) {
	s, ts, p := newTestServer(t)
	ds := dataset.NewTaxi(3000, 1)
	client := p.NewClient()
	r := rng.New(2)
	for _, rec := range ds.Records {
		rep, err := client.Perturb(rec, r)
		if err != nil {
			t.Fatal(err)
		}
		resp := postReport(t, ts.URL, p, rep)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report rejected with %d", resp.StatusCode)
		}
	}
	if s.N() != ds.N() {
		t.Fatalf("server consumed %d reports, want %d", s.N(), ds.N())
	}

	beta := uint64(0b11)
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", ts.URL, beta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marginal query status %d", resp.StatusCode)
	}
	var got MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != ds.N() || got.Beta != beta || len(got.Cells) != 4 {
		t.Fatalf("bad response: %+v", got)
	}
	exact, err := marginal.FromRecords(ds.Records, beta)
	if err != nil {
		t.Fatal(err)
	}
	est, err := marginal.FromCells(beta, got.Cells)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := est.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.15 {
		t.Errorf("deployed estimate TV = %v", tv)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Protocol != "InpHT" || st.D != 8 || st.K != 2 || st.ReportBits != 9 {
		t.Errorf("status = %+v", st)
	}
}

func TestRejectsWrongProtocolReport(t *testing.T) {
	_, ts, _ := newTestServer(t)
	frame, err := encoding.Marshal("MargPS", core.Report{Beta: 0b11, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-protocol report got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsMalformedFrame(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader([]byte{0xff, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed frame got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsInvalidReportContent(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Coefficient outside T (|alpha| > k).
	resp := postReport(t, ts.URL, p, core.Report{Index: 0b1111, Sign: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid report got %d, want 400", resp.StatusCode)
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report got %d, want 405", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/marginal?beta=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /marginal got %d, want 405", resp2.StatusCode)
	}
}

func TestMarginalQueryValidation(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Feed one report so Estimate has data.
	client := p.NewClient()
	rep, err := client.Perturb(5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	postReport(t, ts.URL, p, rep)
	cases := []string{
		"/marginal",           // missing beta
		"/marginal?beta=abc",  // non-numeric
		"/marginal?beta=0",    // empty marginal
		"/marginal?beta=7",    // |beta| > k
		"/marginal?beta=1024", // outside domain
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s got %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestConcurrentReporters(t *testing.T) {
	s, ts, p := newTestServer(t)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := p.NewClient()
			r := rng.New(uint64(w) + 10)
			for i := 0; i < perWorker; i++ {
				rep, err := client.Perturb(uint64(i%256), r)
				if err != nil {
					errs <- err
					return
				}
				frame, err := encoding.Marshal(p.Name(), rep)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.N() != workers*perWorker {
		t.Errorf("consumed %d reports, want %d", s.N(), workers*perWorker)
	}
}

func TestNewRejectsUnknownProtocol(t *testing.T) {
	if _, err := New(fakeProtocol{}); err == nil {
		t.Error("protocol without a wire tag should be rejected")
	}
}

type fakeProtocol struct{ core.Protocol }

func (fakeProtocol) Name() string { return "Mystery" }
