package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, core.Protocol) {
	t.Helper()
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, p
}

func postReport(t *testing.T, url string, p core.Protocol, rep core.Report) *http.Response {
	t.Helper()
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestEndToEndDeployment(t *testing.T) {
	s, ts, p := newTestServer(t)
	ds := dataset.NewTaxi(3000, 1)
	client := p.NewClient()
	r := rng.New(2)
	for _, rec := range ds.Records {
		rep, err := client.Perturb(rec, r)
		if err != nil {
			t.Fatal(err)
		}
		resp := postReport(t, ts.URL, p, rep)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report rejected with %d", resp.StatusCode)
		}
	}
	if s.N() != ds.N() {
		t.Fatalf("server consumed %d reports, want %d", s.N(), ds.N())
	}

	beta := uint64(0b11)
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", ts.URL, beta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marginal query status %d", resp.StatusCode)
	}
	var got MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != ds.N() || got.Beta != beta || len(got.Cells) != 4 {
		t.Fatalf("bad response: %+v", got)
	}
	exact, err := marginal.FromRecords(ds.Records, beta)
	if err != nil {
		t.Fatal(err)
	}
	est, err := marginal.FromCells(beta, got.Cells)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := est.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.15 {
		t.Errorf("deployed estimate TV = %v", tv)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Protocol != "InpHT" || st.D != 8 || st.K != 2 || st.ReportBits != 9 {
		t.Errorf("status = %+v", st)
	}
}

func TestRejectsWrongProtocolReport(t *testing.T) {
	_, ts, _ := newTestServer(t)
	frame, err := encoding.Marshal("MargPS", core.Report{Beta: 0b11, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-protocol report got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsMalformedFrame(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader([]byte{0xff, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed frame got %d, want 400", resp.StatusCode)
	}
}

func TestRejectsInvalidReportContent(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Coefficient outside T (|alpha| > k).
	resp := postReport(t, ts.URL, p, core.Report{Index: 0b1111, Sign: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid report got %d, want 400", resp.StatusCode)
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report got %d, want 405", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/marginal?beta=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /marginal got %d, want 405", resp2.StatusCode)
	}
}

func TestMarginalQueryValidation(t *testing.T) {
	_, ts, p := newTestServer(t)
	// Feed one report so Estimate has data.
	client := p.NewClient()
	rep, err := client.Perturb(5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	postReport(t, ts.URL, p, rep)
	cases := []string{
		"/marginal",           // missing beta
		"/marginal?beta=abc",  // non-numeric
		"/marginal?beta=0",    // empty marginal
		"/marginal?beta=7",    // |beta| > k
		"/marginal?beta=1024", // outside domain
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s got %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestConcurrentReporters(t *testing.T) {
	s, ts, p := newTestServer(t)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := p.NewClient()
			r := rng.New(uint64(w) + 10)
			for i := 0; i < perWorker; i++ {
				rep, err := client.Perturb(uint64(i%256), r)
				if err != nil {
					errs <- err
					return
				}
				frame, err := encoding.Marshal(p.Name(), rep)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.N() != workers*perWorker {
		t.Errorf("consumed %d reports, want %d", s.N(), workers*perWorker)
	}
}

// TestBatchEndpoint posts one batch and checks the accepted count and
// that the resulting estimate is byte-identical to a sequential
// aggregator fed the same reports.
func TestBatchEndpoint(t *testing.T) {
	s, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(7)
	seq := p.NewAggregator()
	var reps []core.Report
	for i := 0; i < 500; i++ {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		if err := seq.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch post status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != len(reps) || s.N() != len(reps) {
		t.Fatalf("accepted %d, server N %d, want %d", br.Accepted, s.N(), len(reps))
	}
	assertMarginalMatches(t, ts.URL, seq, 0b11)
}

// assertMarginalMatches fetches /marginal?beta and requires the cells to
// be byte-identical to want.Estimate(beta) — integer-counter
// aggregation makes shard partitioning invisible in the estimate.
func assertMarginalMatches(t *testing.T, url string, want core.Aggregator, beta uint64) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", url, beta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marginal query status %d", resp.StatusCode)
	}
	var got MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	ref, err := want.Estimate(beta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(ref.Cells) {
		t.Fatalf("got %d cells, want %d", len(got.Cells), len(ref.Cells))
	}
	for c := range ref.Cells {
		if math.Float64bits(got.Cells[c]) != math.Float64bits(ref.Cells[c]) {
			t.Fatalf("cell %d: got %v, want %v", c, got.Cells[c], ref.Cells[c])
		}
	}
}

// TestBatchRejectsMalformedAndMixed covers the batch-specific error
// paths: truncated framing, mixed protocol tags, and wrong-protocol
// batches.
func TestBatchRejectsMalformedAndMixed(t *testing.T) {
	_, ts, p := newTestServer(t)
	good, err := encoding.Marshal(p.Name(), core.Report{Index: 0b1, Sign: 1})
	if err != nil {
		t.Fatal(err)
	}
	other, err := encoding.Marshal("MargPS", core.Report{Beta: 0b11, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      {0x09, 0x01},
		"mixed tags":     append(encoding.AppendFrame(nil, good), encoding.AppendFrame(nil, other)...),
		"wrong protocol": encoding.AppendFrame(nil, other),
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch got %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestBatchRejectionReportsBatchIndex posts a batch whose only invalid
// report sits at a known position and checks the error names that
// batch-global position, not a chunk-relative one.
func TestBatchRejectionReportsBatchIndex(t *testing.T) {
	s, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(31)
	var reps []core.Report
	for i := 0; i < 5; i++ {
		rep, err := client.Perturb(uint64(i), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	reps[3] = core.Report{Index: 0b11111111, Sign: 1} // |alpha| > k: invalid
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.Unmarshal(msg, &br); err != nil {
		t.Fatalf("rejection body %q is not a BatchResponse: %v", msg, err)
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(br.Error, "batch report 3") {
		t.Fatalf("status %d, message %q; want 400 naming batch report 3", resp.StatusCode, msg)
	}
	if br.Accepted != 3 || s.N() != 3 {
		t.Fatalf("accepted=%d N=%d after partial batch, want 3 (reports before the rejection)", br.Accepted, s.N())
	}
}

// TestBatchRejectionReportsLowestIndex posts a batch with invalid
// reports in two different 1024-report chunks; whichever chunk fails
// first in wall-clock time, the reply must name the lowest-index
// rejection.
func TestBatchRejectionReportsLowestIndex(t *testing.T) {
	_, ts, p := newTestServer(t)
	client := p.NewClient()
	r := rng.New(37)
	reps := make([]core.Report, 3000)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	bad := core.Report{Index: 0b11111111, Sign: 1}
	reps[10], reps[2000] = bad, bad // chunks 0 and 1
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(br.Error, "batch report 10") {
		t.Fatalf("status %d, error %q; want 400 naming batch report 10", resp.StatusCode, br.Error)
	}
}

// TestStressInterleavedReportAndBatch hammers the deployment with 32
// goroutines mixing single /report posts and /report/batch posts, then
// asserts the final count and that the marginal is byte-identical to a
// sequential aggregator fed exactly the same reports. Run under
// `go test -race` this is the race certification of the sharded
// ingestion path.
func TestStressInterleavedReportAndBatch(t *testing.T) {
	s, ts, p := newTestServer(t)
	const (
		workers      = 32
		batchesPer   = 6
		batchSize    = 40
		singlesPer   = 25
		perWorker    = batchesPer*batchSize + singlesPer
		totalReports = workers * perWorker
	)
	// Pre-generate every worker's reports deterministically so a
	// sequential reference aggregator can consume the identical multiset.
	reports := make([][]core.Report, workers)
	for w := range reports {
		client := p.NewClient()
		r := rng.New(uint64(w) + 1000)
		for i := 0; i < perWorker; i++ {
			rep, err := client.Perturb(uint64((w*perWorker+i)%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reports[w] = append(reports[w], rep)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reps := reports[w]
			// Interleave: one batch, then a few singles, repeatedly.
			singles := reps[batchesPer*batchSize:]
			for b := 0; b < batchesPer; b++ {
				batch := reps[b*batchSize : (b+1)*batchSize]
				body, err := encoding.MarshalBatch(p.Name(), batch)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var br BatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					errs <- decErr
					return
				}
				// The per-request accepted count must reflect this
				// batch only, even with 31 other writers in flight.
				if br.Accepted != batchSize {
					errs <- fmt.Errorf("batch accepted %d, want %d", br.Accepted, batchSize)
					return
				}
				for i := 0; i < singlesPer/batchesPer && b*(singlesPer/batchesPer)+i < len(singles); i++ {
					rep := singles[b*(singlesPer/batchesPer)+i]
					frame, err := encoding.Marshal(p.Name(), rep)
					if err != nil {
						errs <- err
						return
					}
					resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						errs <- fmt.Errorf("report status %d", resp.StatusCode)
						return
					}
				}
			}
			// Whatever singles the interleaving loop above didn't reach.
			sent := batchesPer * (singlesPer / batchesPer)
			for _, rep := range singles[sent:] {
				frame, err := encoding.Marshal(p.Name(), rep)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("report status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.N() != totalReports {
		t.Fatalf("server consumed %d reports, want %d", s.N(), totalReports)
	}

	// The sequential reference over the same multiset must agree exactly.
	seq := p.NewAggregator()
	for _, reps := range reports {
		if err := seq.ConsumeBatch(reps); err != nil {
			t.Fatal(err)
		}
	}
	assertMarginalMatches(t, ts.URL, seq, 0b11)
	assertMarginalMatches(t, ts.URL, seq, 0b1100)

	// /status must agree with the lock-free counter.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.N != totalReports || st.Shards < 1 {
		t.Errorf("status N=%d shards=%d, want N=%d", st.N, st.Shards, totalReports)
	}
}

func TestNewRejectsUnknownProtocol(t *testing.T) {
	if _, err := New(fakeProtocol{}); err == nil {
		t.Error("protocol without a wire tag should be rejected")
	}
}

type fakeProtocol struct{ core.Protocol }

func (fakeProtocol) Name() string { return "Mystery" }
