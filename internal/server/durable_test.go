package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/store"
)

// newDurableServer opens a store in dir and builds a server on it. The
// caller closes the server (which closes the store).
func newDurableServer(t *testing.T, dir string, p core.Protocol) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, p, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(p, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getStatus(t *testing.T, url string) StatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestDurableServerRestartRecovery drives the full durable lifecycle
// over HTTP: ingest through both endpoints, restart the deployment
// from its data directory, and require the report count, the marginal
// answers, and the recovery markers to survive.
func TestDurableServerRestartRecovery(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir, p)

	client := p.NewClient()
	r := rng.New(21)
	seq := p.NewAggregator()
	var reps []core.Report
	for i := 0; i < 600; i++ {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		if err := seq.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	// First 100 one at a time, the rest batched.
	for _, rep := range reps[:100] {
		resp := postReport(t, ts.URL, p, rep)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report status %d", resp.StatusCode)
		}
	}
	batch, err := encoding.MarshalBatch(p.Name(), reps[100:])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	before := getStatus(t, ts.URL)
	if before.N != len(reps) {
		t.Fatalf("pre-restart N = %d, want %d", before.N, len(reps))
	}
	if before.Durability == nil || before.Durability.Fsync != "always" || before.Durability.WALSegments == 0 {
		t.Fatalf("durability status = %+v", before.Durability)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart from the same directory.
	s2, ts2 := newDurableServer(t, dir, p)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	after := getStatus(t, ts2.URL)
	if after.N != len(reps) {
		t.Fatalf("post-restart N = %d, want %d", after.N, len(reps))
	}
	if after.Durability == nil || after.Durability.RecoveredReports != len(reps) {
		t.Fatalf("post-restart durability = %+v", after.Durability)
	}
	if after.Durability.LastSnapshotReports != len(reps) {
		t.Fatalf("clean shutdown did not snapshot: %+v", after.Durability)
	}

	// The first epoch is already built from the recovered state: no
	// refresh needed for /marginal to serve everything.
	vs := ViewStatusResponse{}
	vsResp, err := http.Get(ts2.URL + "/view/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(vsResp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	vsResp.Body.Close()
	if !vs.FromRecovery || vs.RecoveredReports != len(reps) || vs.ViewN != len(reps) {
		t.Fatalf("view status = %+v", vs)
	}
	assertMarginalMatches(t, ts2.URL, p, seq, 0b11)
}

// TestDurableServerSeedsAcrossShardCounts pins that recovery is
// shard-count independent: a deployment restarted with a different
// shard count serves byte-identical answers.
func TestDurableServerSeedsAcrossShardCounts(t *testing.T) {
	p, err := core.New(core.MargPS, core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir, p, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(p, Options{Store: st, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	client := p.NewClient()
	r := rng.New(33)
	seq := p.NewAggregator()
	var reps []core.Report
	for i := 0; i < 400; i++ {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		if err := seq.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, p, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewWithOptions(p, Options{Store: st2, Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(func() { _ = s2.Close() })
	if s2.N() != len(reps) {
		t.Fatalf("recovered N = %d, want %d", s2.N(), len(reps))
	}
	assertMarginalMatches(t, ts2.URL, p, seq, 0b11)
}
