// Package server provides an HTTP deployment of the marginal collection
// pipeline: clients POST wire-encoded reports to /report (one frame) or
// /report/batch (length-prefixed frames), and analysts GET reconstructed
// marginals from /marginal. The paper argues its protocols are "eminently
// suitable for implementation in existing LDP deployments" (Section 7);
// this package is the reference shape of such a deployment at scale.
//
// # Ingestion architecture
//
// The server owns one core.ShardedAggregator: P per-shard accumulators
// behind P mutexes, merged on demand. A single /report locks exactly one
// shard for one Consume; a /report/batch is decoded outside any lock,
// split into chunks, and each chunk is ingested into a round-robin shard
// under one lock acquisition through a bounded worker pool, so batches
// amortize both HTTP and locking overhead and scale across cores.
// /status reads the report count from an atomic counter and never takes
// a lock; /marginal merges a snapshot of the shards (stalling ingestion
// for at most one shard at a time) and reconstructs from the private
// snapshot.
//
// Shard count defaults to GOMAXPROCS. More shards than concurrent
// writers buys nothing and grows aggregator memory (O(shards * state));
// fewer shards re-introduces contention. See Options.Shards.
//
// # Batch semantics
//
// A batch is not atomic: reports preceding a rejected report (and any
// chunks already in flight when the rejection happens) remain consumed,
// matching the Aggregator.ConsumeBatch contract; further chunks are not
// dispatched. The 400 rejection reply is a BatchResponse carrying the
// exact number of reports ingested plus the first rejection, identified
// by its batch-global index. Under local differential privacy every
// report is individually valid or individually rejected, so partial
// ingestion never corrupts the estimate — it only under-counts the
// failed batch.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
)

// maxReportBytes bounds a single report upload, matching the largest
// frame the batch format accepts.
const maxReportBytes = encoding.MaxFrameBytes

// defaultMaxBatchBytes bounds a /report/batch body: 16 MiB holds over a
// million typical frames (InpHT at d=20 is a few bytes per report).
const defaultMaxBatchBytes = 16 << 20

// maxBatchReports bounds the decoded report count of one batch request,
// capping the memory amplification of a body packed with minimal
// frames (a decoded Report is an order of magnitude larger than a
// 3-byte frame). Populations beyond it split across multiple posts.
const maxBatchReports = 1 << 20

// batchChunk is the number of decoded reports ingested per shard lock
// acquisition. Large enough to amortize locking, small enough that a
// large batch spreads across every shard.
const batchChunk = 1024

// Options tunes a deployment; the zero value selects the defaults.
type Options struct {
	// Shards is the number of per-shard accumulators; <= 0 selects
	// GOMAXPROCS.
	Shards int
	// IngestWorkers bounds the number of goroutines concurrently writing
	// batch chunks into shards, and likewise the number of /report/batch
	// requests being buffered and decoded at once; <= 0 matches the
	// shard count.
	IngestWorkers int
	// MaxBatchBytes bounds a /report/batch body; <= 0 selects 16 MiB.
	MaxBatchBytes int64
}

// Server exposes one protocol deployment over HTTP. Safe for concurrent
// use by any number of HTTP client goroutines.
type Server struct {
	protocol core.Protocol
	tag      encoding.Tag

	agg      *core.ShardedAggregator
	ingest   chan struct{} // bounded worker-pool slots for batch chunks
	batches  chan struct{} // bounds whole /report/batch requests in flight
	maxBatch int64
}

// New builds a server around a protocol with default Options. The
// protocol's name must have a wire tag registered in the encoding
// package.
func New(p core.Protocol) (*Server, error) {
	return NewWithOptions(p, Options{})
}

// NewWithOptions builds a server around a protocol with explicit tuning.
func NewWithOptions(p core.Protocol, opts Options) (*Server, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	agg := core.NewSharded(p, opts.Shards)
	workers := opts.IngestWorkers
	if workers <= 0 {
		workers = agg.Shards()
	}
	maxBatch := opts.MaxBatchBytes
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatchBytes
	}
	return &Server{
		protocol: p,
		tag:      tag,
		agg:      agg,
		ingest:   make(chan struct{}, workers),
		batches:  make(chan struct{}, workers),
		maxBatch: maxBatch,
	}, nil
}

// N returns the number of reports consumed so far. Lock-free.
func (s *Server) N() int { return s.agg.N() }

// Shards returns the number of aggregation shards of the deployment.
func (s *Server) Shards() int { return s.agg.Shards() }

// Handler returns the HTTP routes of the deployment:
//
//	POST /report        binary frame (encoding.Marshal)        -> 204
//	POST /report/batch  length-prefixed frames (MarshalBatch)  -> JSON count
//	GET  /marginal      ?beta=<decimal mask>                   -> JSON table
//	GET  /status        deployment metadata                    -> JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/report/batch", s.handleBatch)
	mux.HandleFunc("/marginal", s.handleMarginal)
	mux.HandleFunc("/status", s.handleStatus)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > maxReportBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, rep, err := encoding.Unmarshal(frame)
	if err != nil {
		http.Error(w, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("report for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	if err := s.agg.Consume(rep); err != nil {
		http.Error(w, "rejected: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// BatchResponse is the JSON shape of a /report/batch reply — both the
// 200 success reply and the 400 rejection reply. On rejection, Accepted
// is the exact number of reports ingested before ingestion stopped
// (chunks already in flight when the rejection happened may have
// completed), and Error describes the first rejected report by its
// batch-global index. Clients should treat Accepted as authoritative
// and not blindly re-post a failed batch.
type BatchResponse struct {
	// Accepted is the number of reports ingested from the batch.
	Accepted int `json:"accepted"`
	// Error is the rejection reason; empty on success.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Bound whole batch requests in flight, not just the shard writes:
	// buffering and decoding a body costs up to maxBatch bytes plus the
	// decoded reports, so excess requests wait here (HTTP backpressure)
	// instead of amplifying memory without bound.
	s.batches <- struct{}{}
	defer func() { <-s.batches }()
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBatch+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBatch {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, reps, err := encoding.UnmarshalBatch(body, maxBatchReports)
	if err != nil {
		http.Error(w, "malformed batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("batch for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}

	// Fan the decoded reports out in chunks through the bounded pool;
	// each chunk takes one shard lock. The handler blocks until its
	// whole batch is ingested, so a 200 means the reports are counted.
	// The accepted count is summed per chunk (not read back from the
	// shared aggregator counter, which concurrent requests also move).
	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	offset := 0
	for len(reps) > 0 {
		// A rejected chunk stops further dispatch; only chunks already
		// in flight can still land after it.
		if failed.Load() {
			break
		}
		chunk := reps
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		reps = reps[len(chunk):]
		s.ingest <- struct{}{}
		// Re-check after the (possibly long) wait for a pool slot: a
		// rejection may have landed while this chunk was queued.
		if failed.Load() {
			<-s.ingest
			break
		}
		wg.Add(1)
		go func(chunk []core.Report, offset int) {
			defer wg.Done()
			defer func() { <-s.ingest }()
			err := s.agg.ConsumeBatch(chunk)
			if err == nil {
				accepted.Add(int64(len(chunk)))
				return
			}
			consumed := 0
			idx := offset
			var be *core.BatchError
			if errors.As(err, &be) {
				consumed = be.Index
				// Re-anchor the chunk-relative index to the batch.
				idx = offset + be.Index
				err = fmt.Errorf("batch report %d: %w", idx, be.Err)
			}
			accepted.Add(int64(consumed))
			failed.Store(true)
			// Chunks fail in arbitrary wall-clock order; keep the
			// rejection with the lowest batch index, matching the
			// "first rejected report" contract.
			errMu.Lock()
			if firstErr == nil || idx < firstIdx {
				firstErr, firstIdx = err, idx
			}
			errMu.Unlock()
		}(chunk, offset)
		offset += len(chunk)
	}
	wg.Wait()
	if firstErr != nil {
		// The rejection reply still carries the exact accepted count so
		// the client knows how much of the batch is in the estimate.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(BatchResponse{
			Accepted: int(accepted.Load()),
			Error:    "rejected: " + firstErr.Error(),
		})
		return
	}
	writeJSON(w, BatchResponse{Accepted: int(accepted.Load())})
}

// MarginalResponse is the JSON shape of a /marginal reply.
type MarginalResponse struct {
	// Beta is the queried attribute mask.
	Beta uint64 `json:"beta"`
	// Cells holds the 2^|beta| estimated cell values in compact order.
	Cells []float64 `json:"cells"`
	// N is the number of reports behind the estimate.
	N int `json:"n"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	betaStr := r.URL.Query().Get("beta")
	beta, err := strconv.ParseUint(betaStr, 10, 64)
	if err != nil {
		http.Error(w, "beta must be a decimal attribute mask", http.StatusBadRequest)
		return
	}
	// Snapshot once so the table and its N are mutually consistent, then
	// estimate from the private snapshot without blocking ingestion.
	snap, err := s.agg.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tab, err := snap.Estimate(beta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, MarginalResponse{Beta: beta, Cells: tab.Cells, N: snap.N()})
}

// StatusResponse is the JSON shape of a /status reply.
type StatusResponse struct {
	Protocol   string  `json:"protocol"`
	D          int     `json:"d"`
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	N          int     `json:"n"`
	ReportBits int     `json:"report_bits"`
	Shards     int     `json:"shards"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	cfg := s.protocol.Config()
	writeJSON(w, StatusResponse{
		Protocol:   s.protocol.Name(),
		D:          cfg.D,
		K:          cfg.K,
		Epsilon:    cfg.Epsilon,
		N:          s.agg.N(), // atomic read; no lock
		ReportBits: s.protocol.CommunicationBits(),
		Shards:     s.agg.Shards(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
