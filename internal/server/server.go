// Package server provides an HTTP deployment of the marginal collection
// pipeline: clients POST wire-encoded reports to /report (one frame) or
// /report/batch (length-prefixed frames), and analysts read estimates
// from /marginal and /query. The paper argues its protocols are
// "eminently suitable for implementation in existing LDP deployments"
// (Section 7); this package is the reference shape of such a deployment
// at scale.
//
// # Epochs and staleness
//
// The read side serves from a materialized view (internal/view): all
// C(d,k) k-way marginals are reconstructed once per epoch from a
// snapshot of the aggregation shards, made mutually consistent, and
// published as an immutable view behind an atomic pointer. /marginal
// and /query answer from the cached epoch in O(2^k) work without taking
// any lock — reads never block ingestion and never trigger
// reconstruction. Answers are therefore stale by up to one refresh
// period: the epoch advances on the configured policy (Options.Refresh:
// wall-time interval and/or report-count delta) and on explicit
// POST /refresh. /view/status reports the serving epoch, its report
// count, and how many reports have arrived since it was built.
//
// # Ingestion architecture
//
// The server owns one core.ShardedAggregator: P per-shard accumulators
// behind P mutexes, merged on demand. A single /report locks exactly one
// shard for one Consume; a /report/batch is decoded outside any lock,
// split into chunks, and each chunk is ingested into a round-robin shard
// under one lock acquisition through a bounded worker pool, so batches
// amortize both HTTP and locking overhead and scale across cores.
// /status reads the report count from an atomic counter and never takes
// a lock; /marginal merges a snapshot of the shards (stalling ingestion
// for at most one shard at a time) and reconstructs from the private
// snapshot.
//
// Shard count defaults to GOMAXPROCS. More shards than concurrent
// writers buys nothing and grows aggregator memory (O(shards * state));
// fewer shards re-introduces contention. See Options.Shards.
//
// # Batch semantics
//
// A batch is not atomic: reports preceding a rejected report (and any
// chunks already in flight when the rejection happens) remain consumed,
// matching the Aggregator.ConsumeBatch contract; further chunks are not
// dispatched. The 400 rejection reply is a BatchResponse carrying the
// exact number of reports ingested plus the first rejection, identified
// by its batch-global index. Under local differential privacy every
// report is individually valid or individually rejected, so partial
// ingestion never corrupts the estimate — it only under-counts the
// failed batch.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/view"
)

// maxReportBytes bounds a single report upload, matching the largest
// frame the batch format accepts.
const maxReportBytes = encoding.MaxFrameBytes

// defaultMaxBatchBytes bounds a /report/batch body: 16 MiB holds over a
// million typical frames (InpHT at d=20 is a few bytes per report).
const defaultMaxBatchBytes = 16 << 20

// maxBatchReports bounds the decoded report count of one batch request,
// capping the memory amplification of a body packed with minimal
// frames (a decoded Report is an order of magnitude larger than a
// 3-byte frame). Populations beyond it split across multiple posts.
const maxBatchReports = 1 << 20

// batchChunk is the number of decoded reports ingested per shard lock
// acquisition. Large enough to amortize locking, small enough that a
// large batch spreads across every shard.
const batchChunk = 1024

// Options tunes a deployment; the zero value selects the defaults.
type Options struct {
	// Shards is the number of per-shard accumulators; <= 0 selects
	// GOMAXPROCS.
	Shards int
	// IngestWorkers bounds the number of goroutines concurrently writing
	// batch chunks into shards, and likewise the number of /report/batch
	// requests being buffered and decoded at once; <= 0 matches the
	// shard count.
	IngestWorkers int
	// MaxBatchBytes bounds a /report/batch body; <= 0 selects 16 MiB.
	MaxBatchBytes int64
	// Refresh is the automatic view-refresh policy; the zero value means
	// the view only advances on POST /refresh.
	Refresh view.Policy
	// View tunes the per-epoch post-processing (consistency rounds,
	// simplex projection).
	View view.Options
}

// Server exposes one protocol deployment over HTTP. Safe for concurrent
// use by any number of HTTP client goroutines.
type Server struct {
	protocol core.Protocol
	tag      encoding.Tag

	agg      *core.ShardedAggregator
	engine   *view.Engine
	ingest   chan struct{} // bounded worker-pool slots for batch chunks
	batches  chan struct{} // bounds whole /report/batch requests in flight
	maxBatch int64
}

// New builds a server around a protocol with default Options. The
// protocol's name must have a wire tag registered in the encoding
// package.
func New(p core.Protocol) (*Server, error) {
	return NewWithOptions(p, Options{})
}

// NewWithOptions builds a server around a protocol with explicit tuning.
func NewWithOptions(p core.Protocol, opts Options) (*Server, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	agg := core.NewSharded(p, opts.Shards)
	workers := opts.IngestWorkers
	if workers <= 0 {
		workers = agg.Shards()
	}
	maxBatch := opts.MaxBatchBytes
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatchBytes
	}
	engine, err := view.NewEngine(agg, p, view.EngineOptions{Refresh: opts.Refresh, Build: opts.View})
	if err != nil {
		return nil, err
	}
	return &Server{
		protocol: p,
		tag:      tag,
		agg:      agg,
		engine:   engine,
		ingest:   make(chan struct{}, workers),
		batches:  make(chan struct{}, workers),
		maxBatch: maxBatch,
	}, nil
}

// Close stops the view engine's refresh loop. The server's handlers
// remain usable (serving the last published epoch); Close is idempotent.
func (s *Server) Close() { s.engine.Close() }

// View returns the engine publishing the server's materialized view.
func (s *Server) View() *view.Engine { return s.engine }

// N returns the number of reports consumed so far. Lock-free.
func (s *Server) N() int { return s.agg.N() }

// Shards returns the number of aggregation shards of the deployment.
func (s *Server) Shards() int { return s.agg.Shards() }

// Handler returns the HTTP routes of the deployment:
//
//	POST /report        binary frame (encoding.Marshal)        -> 204
//	POST /report/batch  length-prefixed frames (MarshalBatch)  -> JSON count
//	GET  /marginal      ?beta=<decimal mask>                   -> JSON table (cached epoch)
//	POST /query         JSON conjunction batch                 -> JSON per-query answers
//	POST /refresh       build + publish the next epoch         -> JSON view status
//	GET  /view/status   serving epoch, staleness, build time   -> JSON
//	GET  /status        deployment metadata                    -> JSON
//	GET  /healthz       liveness probe                         -> JSON ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/report/batch", s.handleBatch)
	mux.HandleFunc("/marginal", s.handleMarginal)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/refresh", s.handleRefresh)
	mux.HandleFunc("/view/status", s.handleViewStatus)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > maxReportBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, rep, err := encoding.Unmarshal(frame)
	if err != nil {
		http.Error(w, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("report for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	if err := s.agg.Consume(rep); err != nil {
		http.Error(w, "rejected: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// BatchResponse is the JSON shape of a /report/batch reply — both the
// 200 success reply and the 400 rejection reply. On rejection, Accepted
// is the exact number of reports ingested before ingestion stopped
// (chunks already in flight when the rejection happened may have
// completed), and Error describes the first rejected report by its
// batch-global index. Clients should treat Accepted as authoritative
// and not blindly re-post a failed batch.
type BatchResponse struct {
	// Accepted is the number of reports ingested from the batch.
	Accepted int `json:"accepted"`
	// Error is the rejection reason; empty on success.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Bound whole batch requests in flight, not just the shard writes:
	// buffering and decoding a body costs up to maxBatch bytes plus the
	// decoded reports, so excess requests wait here (HTTP backpressure)
	// instead of amplifying memory without bound.
	s.batches <- struct{}{}
	defer func() { <-s.batches }()
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBatch+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBatch {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, reps, err := encoding.UnmarshalBatch(body, maxBatchReports)
	if err != nil {
		http.Error(w, "malformed batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("batch for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}

	// Fan the decoded reports out in chunks through the bounded pool;
	// each chunk takes one shard lock. The handler blocks until its
	// whole batch is ingested, so a 200 means the reports are counted.
	// The accepted count is summed per chunk (not read back from the
	// shared aggregator counter, which concurrent requests also move).
	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	offset := 0
	for len(reps) > 0 {
		// A rejected chunk stops further dispatch; only chunks already
		// in flight can still land after it.
		if failed.Load() {
			break
		}
		chunk := reps
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		reps = reps[len(chunk):]
		s.ingest <- struct{}{}
		// Re-check after the (possibly long) wait for a pool slot: a
		// rejection may have landed while this chunk was queued.
		if failed.Load() {
			<-s.ingest
			break
		}
		wg.Add(1)
		go func(chunk []core.Report, offset int) {
			defer wg.Done()
			defer func() { <-s.ingest }()
			err := s.agg.ConsumeBatch(chunk)
			if err == nil {
				accepted.Add(int64(len(chunk)))
				return
			}
			consumed := 0
			idx := offset
			var be *core.BatchError
			if errors.As(err, &be) {
				consumed = be.Index
				// Re-anchor the chunk-relative index to the batch.
				idx = offset + be.Index
				err = fmt.Errorf("batch report %d: %w", idx, be.Err)
			}
			accepted.Add(int64(consumed))
			failed.Store(true)
			// Chunks fail in arbitrary wall-clock order; keep the
			// rejection with the lowest batch index, matching the
			// "first rejected report" contract.
			errMu.Lock()
			if firstErr == nil || idx < firstIdx {
				firstErr, firstIdx = err, idx
			}
			errMu.Unlock()
		}(chunk, offset)
		offset += len(chunk)
	}
	wg.Wait()
	if firstErr != nil {
		// The rejection reply still carries the exact accepted count so
		// the client knows how much of the batch is in the estimate.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(BatchResponse{
			Accepted: int(accepted.Load()),
			Error:    "rejected: " + firstErr.Error(),
		})
		return
	}
	writeJSON(w, BatchResponse{Accepted: int(accepted.Load())})
}

// MarginalResponse is the JSON shape of a /marginal reply.
type MarginalResponse struct {
	// Beta is the queried attribute mask.
	Beta uint64 `json:"beta"`
	// Cells holds the 2^|beta| estimated cell values in compact order.
	Cells []float64 `json:"cells"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Epoch is the materialized view the answer came from.
	Epoch int64 `json:"epoch"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	betaStr := r.URL.Query().Get("beta")
	beta, err := strconv.ParseUint(betaStr, 10, 64)
	if err != nil {
		http.Error(w, "beta must be a decimal attribute mask", http.StatusBadRequest)
		return
	}
	// Serve from the cached epoch: no lock, no snapshot, no
	// reconstruction — O(2^k) marginalization of cached tables at most.
	v := s.engine.Current()
	tab, err := v.Marginal(beta)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, view.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, MarginalResponse{Beta: beta, Cells: tab.Cells, N: v.N, Epoch: v.Epoch})
}

// QueryRequest is the JSON body of a /query request: one conjunction in
// Q, or a batch in Queries (both may be set; Q is evaluated first).
// Conjunctions use the internal/query syntax over positional attribute
// names, e.g. "a0=1 AND a3=0".
type QueryRequest struct {
	Q       string   `json:"q,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// QueryResult is one conjunction's answer within a QueryResponse. A
// malformed or out-of-domain query carries its error here, without
// failing the rest of the batch.
type QueryResult struct {
	// Query is the conjunction as submitted.
	Query string `json:"query"`
	// Beta is the attribute mask the conjunction touches (0 on parse
	// errors).
	Beta uint64 `json:"beta,omitempty"`
	// Fraction is the estimated fraction of users matching the query.
	Fraction float64 `json:"fraction"`
	// Count is Fraction scaled by the epoch's report count.
	Count float64 `json:"count"`
	// Error is the per-query failure; empty on success.
	Error string `json:"error,omitempty"`
}

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	// Epoch is the materialized view the answers came from.
	Epoch int64 `json:"epoch"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Results holds one entry per submitted query, in order.
	Results []QueryResult `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "malformed query body: "+err.Error(), http.StatusBadRequest)
		return
	}
	queries := req.Queries
	if req.Q != "" {
		queries = append([]string{req.Q}, queries...)
	}
	if len(queries) == 0 {
		http.Error(w, "no queries: set q or queries", http.StatusBadRequest)
		return
	}
	// One epoch answers the whole batch, so the results are mutually
	// consistent even while refreshes land concurrently.
	v := s.engine.Current()
	resp := QueryResponse{Epoch: v.Epoch, N: v.N, Results: make([]QueryResult, len(queries))}
	for i, res := range query.EvaluateStrings(v, v.Config().D, nil, queries) {
		out := QueryResult{Query: res.Query}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Beta = res.Conj.Beta()
			out.Fraction = res.Fraction
			out.Count = res.Fraction * float64(v.N)
		}
		resp.Results[i] = out
	}
	writeJSON(w, resp)
}

// ViewStatusResponse is the JSON shape of a /view/status or /refresh
// reply: the serving epoch and how far behind the live pipeline it is.
type ViewStatusResponse struct {
	// Epoch is the serving view's build sequence number.
	Epoch int64 `json:"epoch"`
	// ViewN is the number of reports in the serving epoch.
	ViewN int `json:"view_n"`
	// CurrentN is the live aggregator's report count.
	CurrentN int `json:"current_n"`
	// StalenessReports is CurrentN - ViewN (0 floor): reports not yet
	// visible to readers.
	StalenessReports int `json:"staleness_reports"`
	// AgeSeconds is how long the epoch has been serving.
	AgeSeconds float64 `json:"age_seconds"`
	// BuildMillis is how long the epoch took to build.
	BuildMillis float64 `json:"build_ms"`
	// Tables is the number of materialized k-way tables.
	Tables int `json:"tables"`
}

func (s *Server) viewStatus(v *view.View) ViewStatusResponse {
	n := s.agg.N()
	return ViewStatusResponse{
		Epoch:            v.Epoch,
		ViewN:            v.N,
		CurrentN:         n,
		StalenessReports: v.Staleness(n),
		AgeSeconds:       v.Age().Seconds(),
		BuildMillis:      float64(v.BuildDuration.Nanoseconds()) / 1e6,
		Tables:           v.Tables(),
	}
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	v, err := s.engine.Refresh()
	if err != nil {
		http.Error(w, "refresh failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.viewStatus(v))
}

func (s *Server) handleViewStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.viewStatus(s.engine.Current()))
}

// HealthResponse is the JSON shape of a /healthz reply.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, HealthResponse{Status: "ok", Epoch: s.engine.Epoch()})
}

// StatusResponse is the JSON shape of a /status reply.
type StatusResponse struct {
	Protocol   string  `json:"protocol"`
	D          int     `json:"d"`
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	N          int     `json:"n"`
	ReportBits int     `json:"report_bits"`
	Shards     int     `json:"shards"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	cfg := s.protocol.Config()
	writeJSON(w, StatusResponse{
		Protocol:   s.protocol.Name(),
		D:          cfg.D,
		K:          cfg.K,
		Epsilon:    cfg.Epsilon,
		N:          s.agg.N(), // atomic read; no lock
		ReportBits: s.protocol.CommunicationBits(),
		Shards:     s.agg.Shards(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
