// Package server provides an HTTP deployment of the marginal collection
// pipeline: clients POST wire-encoded reports to /report (one frame) or
// /report/batch (length-prefixed frames), and analysts read estimates
// from /marginal and /query. The paper argues its protocols are
// "eminently suitable for implementation in existing LDP deployments"
// (Section 7); this package is the reference shape of such a deployment
// at scale.
//
// # Node roles and the cluster tier
//
// A deployment is composed from three pipelines — ingestion (sharded
// aggregation + durable WAL), serving (the materialized-view engine),
// and state exchange (canonical aggregator state over GET /state) —
// selected by Options.Role:
//
//   - single (default) runs everything in one process, exactly the
//     monolithic behavior.
//   - edge runs ingestion only: it accepts and WAL-logs reports and
//     exports its canonical state for a coordinator; it serves no
//     estimates and never pays reconstruction cost.
//   - coordinator runs serving only: it periodically pulls GET /state
//     from Options.Peers, replaces each peer's previous contribution
//     with the freshly pulled full state (idempotent by the peer's
//     (node id, version) label), and materializes the view over the
//     merged fleet. It rejects direct report ingestion.
//
// Because aggregation is associative integer counting and the state
// codec is canonical, a coordinator's view over E edges splitting a
// report stream is byte-identical to a single node consuming the whole
// stream — including after an edge crashes and recovers from its WAL.
// See internal/server/cluster.go for the exchange semantics.
//
// # Epochs and staleness
//
// The read side serves from a materialized view (internal/view): all
// C(d,k) k-way marginals are reconstructed once per epoch from a
// snapshot of the aggregation shards, made mutually consistent, and
// published as an immutable view behind an atomic pointer. /marginal
// and /query answer from the cached epoch in O(2^k) work without taking
// any lock — reads never block ingestion and never trigger
// reconstruction. Answers are therefore stale by up to one refresh
// period: the epoch advances on the configured policy (Options.Refresh:
// wall-time interval and/or report-count delta) and on explicit
// POST /refresh. /view/status reports the serving epoch, its report
// count, and how many reports have arrived since it was built — and, on
// a coordinator, the per-peer composition of the serving epoch.
//
// # Ingestion architecture
//
// The server owns one core.ShardedAggregator: P per-shard accumulators
// behind P mutexes, merged on demand. A single /report locks exactly one
// shard for one Consume; a /report/batch is decoded outside any lock,
// split into chunks, and each chunk is ingested into a round-robin shard
// under one lock acquisition through a bounded worker pool, so batches
// amortize both HTTP and locking overhead and scale across cores.
// /status reads the report count from an atomic counter and never takes
// a lock; /marginal merges a snapshot of the shards (stalling ingestion
// for at most one shard at a time) and reconstructs from the private
// snapshot.
//
// Shard count defaults to GOMAXPROCS. More shards than concurrent
// writers buys nothing and grows aggregator memory (O(shards * state));
// fewer shards re-introduces contention. See Options.Shards.
//
// # Durability
//
// With Options.Store set, the deployment survives crashes: every
// accepted report is appended to a write-ahead log (internal/store)
// before the request is acked, under the store's fsync policy, and the
// aggregation state is periodically compacted into counter snapshots.
// On construction the server seeds its sharded aggregator with the
// state the store recovered — so the view engine's first epoch already
// serves everything that survived — and registers the aggregator as
// the store's snapshot source. Close flushes the log and writes a
// final snapshot. GET /status reports the WAL footprint and GET
// /view/status whether the serving epoch contains recovered reports.
// Without a store the deployment is memory-only, exactly as before.
// A coordinator does not ingest, so it takes no Store; its durable
// artifact is the per-peer state snapshot in Options.ClusterDir, which
// a restart recovers before re-pulls replace it.
//
// # Batch semantics
//
// A batch is not atomic: reports preceding a rejected report (and any
// chunks already in flight when the rejection happens) remain consumed,
// matching the Aggregator.ConsumeBatch contract; further chunks are not
// dispatched. The 400 rejection reply is a BatchResponse carrying the
// exact number of reports ingested plus the first rejection, identified
// by its batch-global index. Under local differential privacy every
// report is individually valid or individually rejected, so partial
// ingestion never corrupts the estimate — it only under-counts the
// failed batch.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/privacy"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/trace"
	"ldpmarginals/internal/view"
	"ldpmarginals/internal/window"
	"ldpmarginals/internal/wire"
)

// budgetTokenHeader carries the stable client token a windowed
// deployment with a per-round budget charges reports against.
const budgetTokenHeader = "X-LDP-Token"

// maxReportBytes bounds a single report upload, matching the largest
// frame the batch format accepts.
const maxReportBytes = encoding.MaxFrameBytes

// defaultMaxBatchBytes bounds a /report/batch body: 16 MiB holds over a
// million typical frames (InpHT at d=20 is a few bytes per report).
const defaultMaxBatchBytes = 16 << 20

// defaultMaxQueryBytes bounds a /query body: 1 MiB of JSON holds tens of
// thousands of conjunctions, far beyond any sane analyst batch.
const defaultMaxQueryBytes = 1 << 20

// defaultMaxStateBytes bounds a pulled /state body. The largest live
// state is InpRR near d=20: 2^20 uvarint counters plus framing, well
// under this.
const defaultMaxStateBytes = 256 << 20

// defaultPullInterval is the coordinator's pull cadence when
// Options.PullInterval is unset.
const defaultPullInterval = 5 * time.Second

// defaultPullTimeout bounds one peer state transfer.
const defaultPullTimeout = 30 * time.Second

// maxBatchReports bounds the decoded report count of one batch request,
// capping the memory amplification of a body packed with minimal
// frames (a decoded Report is an order of magnitude larger than a
// 3-byte frame). Populations beyond it split across multiple posts.
const maxBatchReports = 1 << 20

// batchChunk is the number of decoded reports ingested per shard lock
// acquisition. Large enough to amortize locking, small enough that a
// large batch spreads across every shard.
const batchChunk = 1024

// Options tunes a deployment; the zero value selects the defaults
// (a single-role, memory-only node).
type Options struct {
	// Role selects which pipeline stages this node runs; the zero value
	// is RoleSingle (the monolithic deployment).
	Role Role
	// NodeID names this node in state-exchange frames and cluster
	// status; empty selects a random "node-xxxxxxxx" id. Must be unique
	// across a cluster: a coordinator refuses to merge two peers
	// claiming the same id.
	NodeID string
	// Peers is the list of peer base URLs (e.g. "http://10.0.0.7:8080")
	// a coordinator pulls state from. Required for RoleCoordinator,
	// rejected for other roles.
	Peers []string
	// PullInterval is the coordinator's per-peer pull cadence; <= 0
	// selects 5s. Failing peers back off exponentially up to 32x.
	PullInterval time.Duration
	// PullTimeout bounds one peer state transfer; <= 0 selects 30s.
	PullTimeout time.Duration
	// MaxStateBytes bounds a pulled /state body; <= 0 selects 256 MiB.
	MaxStateBytes int64
	// ClusterDir, when set on a coordinator, persists the latest
	// accepted peer states (atomically, CRC-checked) so a restart
	// resumes from them instead of an empty fleet. Rejected for other
	// roles (their durability is Store).
	ClusterDir string
	// DisableDeltaPull makes a coordinator's pulls fetch the legacy
	// full-frame /state exchange instead of negotiating componentized
	// deltas — an operational escape hatch (and the control arm of the
	// delta-vs-full equivalence tests). Peers still answer 304 to the
	// version handshake either way.
	DisableDeltaPull bool

	// Shards is the number of per-shard accumulators; <= 0 selects
	// GOMAXPROCS.
	Shards int
	// IngestWorkers bounds the number of goroutines concurrently writing
	// batch chunks into shards, and likewise the number of /report/batch
	// requests being buffered and decoded at once; <= 0 matches the
	// shard count.
	IngestWorkers int
	// MaxBatchBytes bounds a /report/batch body; <= 0 selects 16 MiB.
	MaxBatchBytes int64
	// MaxInflightIngest bounds how many /report and /report/batch
	// requests are processed concurrently; arrivals beyond it wait in a
	// bounded queue (MaxIngestQueue) and are shed with 429 + Retry-After
	// once that fills. Zero selects 4x the ingest workers; negative
	// disables admission control entirely.
	MaxInflightIngest int
	// MaxIngestQueue bounds how many ingest requests may wait for an
	// in-flight slot before new arrivals are shed; <= 0 selects 16x the
	// in-flight cap.
	MaxIngestQueue int
	// MaxQueryBytes bounds a /query JSON body; <= 0 selects 1 MiB.
	MaxQueryBytes int64
	// Refresh is the automatic view-refresh policy; the zero value means
	// the view only advances on POST /refresh.
	Refresh view.Policy
	// View tunes the per-epoch post-processing (consistency rounds,
	// simplex projection).
	View view.Options
	// Store, when non-nil, makes ingestion durable: accepted reports are
	// appended to its write-ahead log before the ack, the recovered
	// state seeds the aggregator, and the aggregator becomes the
	// store's snapshot source. The server owns the store from here on:
	// Server.Close closes it. Rejected for RoleCoordinator, which does
	// not ingest.
	Store *store.Store

	// DegradedProbeInterval is the cadence at which a node degraded by a
	// WAL failure probes its data directory (sentinel write + fsync) and
	// attempts recovery; <= 0 selects 2s. Ignored without a Store.
	DegradedProbeInterval time.Duration
	// QuarantineAfter is the number of consecutive poison failures
	// (corrupt, undecodable, or unfoldable frames — not transport
	// errors) after which a coordinator quarantines a peer; <= 0 selects
	// 3. Ignored outside RoleCoordinator.
	QuarantineAfter int
	// QuarantineInterval is the half-open probe cadence for quarantined
	// peers: one pull is attempted per interval, and a clean pull lifts
	// the quarantine; <= 0 selects 16x PullInterval. Ignored outside
	// RoleCoordinator.
	QuarantineInterval time.Duration

	// Window, with Bucket, turns the deployment into a continual
	// release: reports land in a time-bucketed ring (internal/window)
	// and estimates cover the last Window of wall time instead of the
	// whole collection. Window must be a positive multiple of Bucket.
	// Rejected for RoleCoordinator — buckets are sealed edge-side and a
	// coordinator composes its peers' windowed /state exports unchanged.
	Window time.Duration
	// Bucket is the window's rotation granularity: the live bucket
	// seals (and, with a Store, the WAL segment rotates) every Bucket,
	// and state expires one Bucket at a time.
	Bucket time.Duration
	// RoundEps, when positive, enforces a per-client epsilon budget per
	// window: each accepted report spends the deployment's epsilon
	// against the token in its X-LDP-Token header, and reports from
	// tokens whose window spend would exceed RoundEps are rejected with
	// 429. Requires Window.
	RoundEps float64

	// Log receives the server's leveled key=value log lines: per-request
	// logging at debug (carrying the trace id so log lines and traces
	// correlate), degraded-mode events at warn. Nil disables logging.
	Log *logx.Logger
	// TraceCapacity is the completed-trace ring size behind GET
	// /debug/traces; <= 0 selects trace.DefaultCapacity.
	TraceCapacity int
	// SlowTraceThreshold is the request duration at or above which a
	// completed trace is additionally logged at warn; <= 0 selects 1s.
	SlowTraceThreshold time.Duration
}

// defaultSlowTrace is the slow-trace log threshold selected by
// Options.SlowTraceThreshold <= 0.
const defaultSlowTrace = time.Second

// ingestTarget is the write destination of the ingest pipeline: the
// sharded aggregator directly for a cumulative deployment, the window
// ring (whose live bucket is a sharded aggregator) for a windowed one.
type ingestTarget interface {
	Consume(core.Report) error
	ConsumeBatch([]core.Report) error
	N() int
}

// ingestPipeline is the write side of a deployment: the ingest target,
// the optional durable store wired in front of it, and the bounded
// batch worker pool. Roles that ingest (single, edge) run one.
type ingestPipeline struct {
	sink      ingestTarget
	st        *store.Store  // nil for a memory-only deployment
	recovered int           // reports restored from the store at startup
	slots     chan struct{} // bounded worker-pool slots for batch chunks
	batches   chan struct{} // bounds whole /report/batch requests in flight
	maxBatch  int64
}

// newIngestPipeline wires the store (seeding recovered state through
// seed, registering src as the snapshot source) and sizes the worker
// pools. shards is the resolved aggregation width the worker defaults
// scale with.
func newIngestPipeline(sink ingestTarget, seed func(core.Aggregator) error, src func() (core.Aggregator, error), shards int, opts Options) (*ingestPipeline, error) {
	recovered := 0
	if opts.Store != nil {
		rec, _ := opts.Store.Recovered()
		if rec != nil && rec.N() > 0 {
			// Seed the live pipeline before the engine builds its first
			// epoch, so recovered reports are served immediately.
			if err := seed(rec); err != nil {
				return nil, fmt.Errorf("server: seeding recovered state: %w", err)
			}
			recovered = rec.N()
		}
		// The recovered state now lives in the live pipeline; let the
		// store drop its copy.
		opts.Store.ReleaseRecovered()
		opts.Store.SetSource(src)
	}
	workers := opts.IngestWorkers
	if workers <= 0 {
		workers = shards
	}
	maxBatch := opts.MaxBatchBytes
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatchBytes
	}
	return &ingestPipeline{
		sink:      sink,
		st:        opts.Store,
		recovered: recovered,
		slots:     make(chan struct{}, workers),
		batches:   make(chan struct{}, workers),
		maxBatch:  maxBatch,
	}, nil
}

// readPipeline is the read side of a deployment: the view engine over
// its source (the local aggregator for single, the fleet for a
// coordinator). Roles that serve estimates (single, coordinator) run
// one.
type readPipeline struct {
	engine   *view.Engine
	src      view.Source // what staleness is measured against
	maxQuery int64
}

// Server exposes one protocol deployment over HTTP. Safe for concurrent
// use by any number of HTTP client goroutines.
type Server struct {
	protocol core.Protocol
	tag      encoding.Tag
	role     Role
	nodeID   string

	agg    *core.ShardedAggregator // local aggregation state (all roles)
	win    *window.Ring            // windowed deployments only
	ledger *privacy.Ledger         // windowed deployments with a RoundEps budget
	rotor  *rotator                // drives bucket seal/expiry for windowed deployments

	// verSalt offsets the exported state version with a per-process
	// random value. The in-memory mutation counters restart at zero with
	// the process, so without the salt a node that crashed, recovered a
	// *different* state (reports inside the fsync window are lost), and
	// reached the same counter value could be skipped by a coordinator
	// as "unchanged". Consumers compare version labels only for
	// equality, so the salt costs nothing and makes cross-restart
	// collisions vanishingly unlikely.
	verSalt uint64

	ingest *ingestPipeline // nil when the role doesn't ingest (coordinator)
	reads  *readPipeline   // nil when the role doesn't serve (edge)
	fleet  *fleet          // coordinator only
	puller *puller         // coordinator only

	// stateHist remembers recent componentized /state export labels and
	// their per-component version vectors — the bases deltas are diffed
	// against. In-memory only: a restart (which re-salts the version
	// label anyway) empties it, and pullers then fall back to one full
	// frame.
	stateHist exportHistory

	ins    *serverInstruments // always non-nil; hot paths update unconditionally
	adm    *admission         // ingest load shedding; nil when disabled or not ingesting
	deg    *degrader          // WAL-failure degradation; nil without a durable ingest path
	reg    *metrics.Registry  // the /metrics registry, assembled at construction
	tracer *trace.Tracer      // always non-nil; roots one span per request
	log    *logx.Logger       // nil-safe; nil discards everything
}

// New builds a single-role server around a protocol with default
// Options. The protocol's name must have a wire tag registered in the
// encoding package.
func New(p core.Protocol) (*Server, error) {
	return NewWithOptions(p, Options{})
}

// NewWithOptions builds a server around a protocol with explicit tuning.
func NewWithOptions(p core.Protocol, opts Options) (*Server, error) {
	// The server owns the store from the moment it is passed in: on any
	// construction failure it must be closed, or its committer
	// goroutines and open WAL segment leak (callers are told not to
	// close it themselves).
	fail := func(err error) (*Server, error) {
		if opts.Store != nil {
			_ = opts.Store.Close()
		}
		return nil, err
	}
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return fail(err)
	}
	if err := validateRoleOptions(opts); err != nil {
		return fail(err)
	}
	nodeID := opts.NodeID
	if nodeID == "" {
		nodeID, err = randomNodeID()
		if err != nil {
			return fail(err)
		}
	}
	if len(nodeID) > wire.MaxNodeIDLen {
		return fail(fmt.Errorf("server: node id of %d bytes exceeds %d", len(nodeID), wire.MaxNodeIDLen))
	}
	s := &Server{
		protocol: p,
		tag:      tag,
		role:     opts.Role,
		nodeID:   nodeID,
		agg:      core.NewSharded(p, opts.Shards),
		ins:      newServerInstruments(),
		log:      opts.Log.With("node", nodeID),
	}
	slow := opts.SlowTraceThreshold
	if slow <= 0 {
		slow = defaultSlowTrace
	}
	s.tracer = trace.New(trace.Options{
		Capacity:      opts.TraceCapacity,
		SlowThreshold: slow,
		SlowLog: func(traceID, rootName string, d time.Duration) {
			s.log.Warn("slow trace", "trace", traceID, "root", rootName, "dur", d)
		},
	})
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err != nil {
		return fail(fmt.Errorf("server: generating version salt: %w", err))
	}
	s.verSalt = binary.LittleEndian.Uint64(salt[:])
	if opts.Window > 0 {
		win, err := window.NewRing(p, window.Options{
			Window: opts.Window,
			Bucket: opts.Bucket,
			Shards: s.agg.Shards(),
		})
		if err != nil {
			return fail(err)
		}
		s.win = win
		if opts.RoundEps > 0 {
			ledger, err := privacy.NewLedger(opts.RoundEps, p.Config().Epsilon, int(opts.Window/opts.Bucket))
			if err != nil {
				return fail(err)
			}
			s.ledger = ledger
		}
	}
	if s.role.ingests() {
		// The windowed ring replaces the bare sharded aggregator as the
		// ingest target, recovery seed, and snapshot source; the
		// cumulative path is unchanged.
		sink, seed, src := ingestTarget(s.agg), s.agg.Merge, s.agg.Snapshot
		if s.win != nil {
			sink, seed, src = s.win, s.win.SeedRecovered, s.win.Snapshot
		}
		if s.ingest, err = newIngestPipeline(sink, seed, src, s.agg.Shards(), opts); err != nil {
			return fail(err)
		}
		if opts.MaxInflightIngest >= 0 {
			inflight := opts.MaxInflightIngest
			if inflight == 0 {
				inflight = 4 * cap(s.ingest.slots)
			}
			queue := opts.MaxIngestQueue
			if queue <= 0 {
				queue = 16 * inflight
			}
			s.adm = newAdmission(inflight, queue)
		}
		if s.ingest.st != nil {
			s.deg = newDegrader(s.ingest.st, s.log, opts.DegradedProbeInterval)
		}
	}
	var src view.Source = s.agg
	if s.win != nil {
		src = s.win
	}
	if s.role == RoleCoordinator {
		if s.fleet, err = newFleet(s.agg, p, opts.Peers, opts.ClusterDir, nodeID); err != nil {
			return fail(err)
		}
		src = s.fleet
		interval := opts.PullInterval
		if interval <= 0 {
			interval = defaultPullInterval
		}
		timeout := opts.PullTimeout
		if timeout <= 0 {
			timeout = defaultPullTimeout
		}
		maxState := opts.MaxStateBytes
		if maxState <= 0 {
			maxState = defaultMaxStateBytes
		}
		s.puller = newPuller(s.fleet, interval, timeout, maxState, opts.DisableDeltaPull,
			opts.QuarantineAfter, opts.QuarantineInterval, s.tracer, s.log)
	}
	if s.role.serves() {
		maxQuery := opts.MaxQueryBytes
		if maxQuery <= 0 {
			maxQuery = defaultMaxQueryBytes
		}
		engine, err := view.NewEngine(src, p, view.EngineOptions{Refresh: opts.Refresh, Build: opts.View, Tracer: s.tracer})
		if err != nil {
			return fail(err)
		}
		s.reads = &readPipeline{engine: engine, src: src, maxQuery: maxQuery}
	}
	if s.puller != nil {
		// Start pulling only after the initial epoch is built, so the
		// engine never races fleet mutations during construction.
		s.puller.start()
	}
	if s.win != nil {
		// Rotation starts after the store's recovered state is seeded and
		// the initial epoch is built, so the first Advance never races
		// construction.
		s.rotor = newRotator(s)
		s.rotor.start()
	}
	if s.deg != nil {
		s.deg.start()
	}
	// Every layer now exists; assemble the /metrics registry over them.
	s.reg = s.buildRegistry()
	return s, nil
}

// validateRoleOptions rejects option combinations that cross role
// boundaries, so a misconfigured node fails at startup instead of
// silently dropping a pipeline stage.
func validateRoleOptions(opts Options) error {
	if (opts.Window > 0) != (opts.Bucket > 0) {
		return errors.New("server: Window and Bucket must be set together (a window needs a rotation granularity)")
	}
	if opts.RoundEps > 0 && opts.Window <= 0 {
		return errors.New("server: RoundEps budgets reports per window round; set Window and Bucket")
	}
	if opts.Role == RoleCoordinator {
		if opts.Window > 0 {
			return errors.New("server: role coordinator does not ingest and takes no window; buckets are sealed edge-side and compose through the /state pulls unchanged")
		}
		if len(opts.Peers) == 0 {
			return errors.New("server: role coordinator requires at least one peer URL")
		}
		if opts.Store != nil {
			return errors.New("server: role coordinator does not ingest and takes no Store; durability lives at the edges (use ClusterDir for peer-state persistence)")
		}
		return nil
	}
	if len(opts.Peers) > 0 {
		return fmt.Errorf("server: role %s takes no peers (only a coordinator pulls state)", opts.Role)
	}
	if opts.ClusterDir != "" {
		return fmt.Errorf("server: role %s takes no ClusterDir (its durability is Store)", opts.Role)
	}
	return nil
}

// randomNodeID generates a "node-xxxxxxxx" id unique enough for a
// fleet.
func randomNodeID() (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating node id: %w", err)
	}
	return "node-" + hex.EncodeToString(b[:]), nil
}

// Close stops the coordinator's peer puller and the view engine's
// refresh loop and, for a durable deployment, flushes the write-ahead
// log and writes a final counter snapshot (a coordinator persists its
// peer states instead). The server's handlers remain usable (serving
// the last published epoch, rejecting ingestion); Close is idempotent.
func (s *Server) Close() error {
	if s.rotor != nil {
		// Stop rotations before the store goes away: an Advance mid-close
		// would try to rotate a closed WAL.
		s.rotor.Close()
	}
	if s.puller != nil {
		s.puller.Close()
	}
	if s.deg != nil {
		// Stop the health probe before the store goes away: a Recover
		// mid-close would race the final snapshot.
		s.deg.Close()
	}
	if s.reads != nil {
		s.reads.engine.Close()
	}
	if s.fleet != nil {
		s.fleet.persist()
	}
	if s.ingest != nil && s.ingest.st != nil {
		return s.ingest.st.Close()
	}
	return nil
}

// Role returns the node's role.
func (s *Server) Role() Role { return s.role }

// NodeID returns the node's cluster id.
func (s *Server) NodeID() string { return s.nodeID }

// Store returns the durability layer, or nil for a memory-only (or
// coordinator) deployment.
func (s *Server) Store() *store.Store {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.st
}

// View returns the engine publishing the server's materialized view, or
// nil for an edge (which serves no estimates).
func (s *Server) View() *view.Engine {
	if s.reads == nil {
		return nil
	}
	return s.reads.engine
}

// N returns the number of reports behind this node: local ingestion for
// single and edge roles, the fleet-wide count for a coordinator.
// Lock-free.
func (s *Server) N() int {
	if s.fleet != nil {
		return s.fleet.N()
	}
	if s.win != nil {
		return s.win.N()
	}
	return s.agg.N()
}

// Window returns the sliding-window ring of a windowed deployment, or
// nil for a cumulative one.
func (s *Server) Window() *window.Ring { return s.win }

// Shards returns the number of aggregation shards of the deployment.
func (s *Server) Shards() int { return s.agg.Shards() }

// Handler returns the HTTP routes of the deployment:
//
//	POST /report        binary frame (encoding.Marshal)        -> 204  (single, edge)
//	POST /report/batch  length-prefixed frames (MarshalBatch)  -> JSON count (single, edge)
//	GET  /marginal      ?beta=<decimal mask>                   -> JSON table (single, coordinator)
//	POST /query         JSON conjunction batch                 -> JSON per-query answers (single, coordinator)
//	POST /refresh       build + publish the next epoch         -> JSON view status (single, coordinator)
//	GET  /view/status   serving epoch, staleness, build time   -> JSON (single, coordinator)
//	GET  /view/diagnostics  accuracy diagnostics (TV bound, drift) -> JSON (single, coordinator)
//	GET  /state         canonical aggregator state frame       -> binary (all roles)
//	POST /pull          pull every peer now                    -> JSON cluster status (coordinator)
//	GET  /status        deployment metadata + cluster block    -> JSON
//	GET  /healthz       liveness probe                         -> JSON ok
//	GET  /readyz        readiness probe (503 until ready)      -> JSON
//	GET  /metrics       Prometheus text exposition             -> text/plain
//	GET  /debug/traces  completed request/lifecycle traces     -> JSON (all roles)
//
// Endpoints outside the node's role answer 403 naming the role. Every
// request passes through the instrumentation middleware (per-endpoint
// latency and status-class counters, visible on /metrics), which also
// roots a trace span per request and echoes its id as X-LDP-Trace-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/report/batch", s.handleBatch)
	mux.HandleFunc("/marginal", s.handleMarginal)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/refresh", s.handleRefresh)
	mux.HandleFunc("/view/status", s.handleViewStatus)
	mux.HandleFunc("/view/diagnostics", s.handleViewDiagnostics)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/pull", s.handlePull)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/traces", s.tracer.Handler())
	return s.instrument(mux)
}

// Tracer returns the server's tracer. Never nil.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// TraceHandler returns the GET /debug/traces handler, for mounting on a
// side listener alongside the metrics handler.
func (s *Server) TraceHandler() http.Handler { return s.tracer.Handler() }

// ErrorResponse is the JSON shape of every plain error reply (4xx/5xx
// outside the endpoint-specific shapes like BatchResponse): the
// message, plus the request's trace id so a client-side error report
// can be joined against the server's /debug/traces ring and logs.
type ErrorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// httpError answers an error as JSON, carrying the request's trace id
// when the middleware opened one.
func httpError(w http.ResponseWriter, r *http.Request, msg string, code int) {
	resp := ErrorResponse{Error: msg}
	if span := trace.FromContext(r.Context()); span != nil {
		resp.TraceID = span.TraceID().String()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// allow guards a handler's method, answering 405 with the Allow header
// (RFC 9110 §15.5.6) for anything else.
func allow(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	httpError(w, r, method+" required", http.StatusMethodNotAllowed)
	return false
}

// rejectRole answers 403 for an endpoint outside the node's role,
// naming the role that does serve it.
func (s *Server) rejectRole(w http.ResponseWriter, r *http.Request, what, serveRole string) {
	httpError(w, r, fmt.Sprintf("role %s does not serve %s; use a %s node", s.role, what, serveRole), http.StatusForbidden)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	if s.ingest == nil {
		s.rejectRole(w, r, "report ingestion", "single or edge")
		return
	}
	if !s.admitHealthy(w, r) {
		return
	}
	if s.adm != nil {
		if !s.admit(w, r, s.ins.shedReport) {
			return
		}
		defer s.adm.release()
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		httpError(w, r, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > maxReportBytes {
		httpError(w, r, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, rep, err := encoding.Unmarshal(frame)
	if err != nil {
		httpError(w, r, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		httpError(w, r, fmt.Sprintf("report for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	if !s.chargeBudget(w, r, 1) {
		return
	}
	in := s.ingest
	var rejected error
	var err2 error
	if in.st != nil {
		// The frame is appended to the WAL (honoring the fsync policy)
		// before the ack below; a single report logs as a one-frame batch.
		batch := encoding.AppendFrame(nil, frame)
		err2 = in.st.IngestContext(r.Context(), batch, func() (int, int, error) {
			if err := in.sink.Consume(rep); err != nil {
				rejected = err
				return 0, 0, err
			}
			return 1, len(batch), nil
		})
	} else if err := in.sink.Consume(rep); err != nil {
		rejected = err
	}
	if rejected != nil {
		s.ins.rejectedReports.Inc()
		httpError(w, r, "rejected: "+rejected.Error(), http.StatusBadRequest)
		return
	}
	s.ins.ingestReports.Inc()
	if err2 != nil {
		// Consumed but not durably logged: a server fault, not a client
		// one. The report is in memory and the next snapshot captures
		// it, but the durability promise of the ack cannot be made.
		httpError(w, r, "persistence failed: "+err2.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestChunk feeds the decoded chunk reps[lo:hi] into the sharded
// aggregator — through the store's consume+log pair when the deployment
// is durable, so the accepted prefix of the chunk is in the WAL before
// the batch handler acks. The logged payload is the chunk's slice of
// the request body (body and ends as returned by UnmarshalBatchEnds):
// the validated wire bytes verbatim. Group commit in the store keeps
// concurrent chunks from serializing on the fsync.
//
// The returned count is how many of the chunk's reports entered the
// aggregator, regardless of the error: on a report rejection it is the
// accepted prefix, and on a WAL failure (which can mask a rejection)
// it is still exactly what the aggregator consumed.
func (in *ingestPipeline) ingestChunk(ctx context.Context, reps []core.Report, body []byte, ends []int, lo, hi int) (int, error) {
	chunk := reps[lo:hi]
	if in.st == nil {
		err := in.sink.ConsumeBatch(chunk)
		if err == nil {
			return len(chunk), nil
		}
		var be *core.BatchError
		if errors.As(err, &be) {
			return be.Index, err
		}
		return 0, err
	}
	start := startOf(ends, lo)
	applied := 0
	err := in.st.IngestContext(ctx, body[start:ends[hi-1]], func() (int, int, error) {
		err := in.sink.ConsumeBatch(chunk)
		if err == nil {
			applied = len(chunk)
			return applied, ends[hi-1] - start, nil
		}
		var be *core.BatchError
		if errors.As(err, &be) && be.Index > 0 {
			applied = be.Index
			return applied, ends[lo+be.Index-1] - start, err
		}
		return 0, 0, err
	})
	return applied, err
}

// startOf returns the byte offset in the request body where report lo's
// frame begins.
func startOf(ends []int, lo int) int {
	if lo > 0 {
		return ends[lo-1]
	}
	return 0
}

// batchBuffers is one /report/batch request's reusable workspace: the
// raw body and the decoded record slices. Pooled so steady-state ingest
// stops allocating per request — the decoded []core.Report alone is an
// order of magnitude larger than a typical body. Only slice headers are
// reused; per-report payloads are freshly decoded (see
// encoding.UnmarshalBatchEndsInto), so nothing an aggregator could have
// retained is ever overwritten.
type batchBuffers struct {
	body []byte
	reps []core.Report
	ends []int
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuffers) }}

// readBodyInto reads r (bounded by limit+1 bytes) into buf, growing it
// as needed and returning the filled slice — io.ReadAll over a reusable
// buffer.
func readBodyInto(r io.Reader, limit int64, buf []byte) ([]byte, error) {
	lr := io.LimitReader(r, limit+1)
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// BatchResponse is the JSON shape of a /report/batch reply — both the
// 200 success reply and the 400 rejection reply. On rejection, Accepted
// is the exact number of reports ingested before ingestion stopped
// (chunks already in flight when the rejection happened may have
// completed), and Error describes the first rejected report by its
// batch-global index. Clients should treat Accepted as authoritative
// and not blindly re-post a failed batch.
type BatchResponse struct {
	// Accepted is the number of reports ingested from the batch.
	Accepted int `json:"accepted"`
	// Error is the rejection reason; empty on success.
	Error string `json:"error,omitempty"`
	// TraceID is the request's trace id, set on rejection replies so a
	// client-side failure report can be joined against the server's
	// /debug/traces ring and logs.
	TraceID string `json:"trace_id,omitempty"`
}

// traceID returns the request's trace id, or "" when the middleware
// opened no span.
func traceID(r *http.Request) string {
	if span := trace.FromContext(r.Context()); span != nil {
		return span.TraceID().String()
	}
	return ""
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	if s.ingest == nil {
		s.rejectRole(w, r, "report ingestion", "single or edge")
		return
	}
	if !s.admitHealthy(w, r) {
		return
	}
	if s.adm != nil {
		if !s.admit(w, r, s.ins.shedBatch) {
			return
		}
		defer s.adm.release()
	}
	in := s.ingest
	// Bound whole batch requests in flight, not just the shard writes:
	// buffering and decoding a body costs up to maxBatch bytes plus the
	// decoded reports, so excess requests wait here (HTTP backpressure)
	// instead of amplifying memory without bound.
	in.batches <- struct{}{}
	defer func() { <-in.batches }()
	bufs := batchBufPool.Get().(*batchBuffers)
	bodyHandedToWAL := false
	defer func() {
		if bodyHandedToWAL {
			// The durable store's committer may still reference body
			// slices after the handler returns (group commit); hand the
			// buffer over instead of recycling it.
			bufs.body = nil
		}
		batchBufPool.Put(bufs)
	}()
	body, err := readBodyInto(r.Body, in.maxBatch, bufs.body)
	bufs.body = body
	if err != nil {
		httpError(w, r, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > in.maxBatch {
		httpError(w, r, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, reps, ends, err := encoding.UnmarshalBatchEndsInto(body, maxBatchReports, bufs.reps, bufs.ends)
	if err != nil {
		httpError(w, r, "malformed batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	bufs.reps, bufs.ends = reps, ends
	if tag != s.tag {
		httpError(w, r, fmt.Sprintf("batch for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	if s.ledger != nil {
		// The whole batch is charged atomically before any chunk is
		// dispatched: a batch the budget cannot cover is rejected in
		// full, never partially ingested.
		token := r.Header.Get(budgetTokenHeader)
		if token == "" {
			httpError(w, r, "windowed deployment enforces a per-round budget; send a stable client token in "+budgetTokenHeader, http.StatusBadRequest)
			return
		}
		_, chSpan := trace.StartSpan(r.Context(), "ledger.charge")
		chSpan.SetAttr("reports", len(reps))
		err := s.ledger.Charge(token, len(reps))
		if err != nil {
			chSpan.SetAttr("error", err.Error())
		}
		chSpan.End()
		if err != nil {
			s.setRetryAfter(w)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(BatchResponse{Error: err.Error(), TraceID: traceID(r)})
			return
		}
	}

	// Fan the decoded reports out in chunks through the bounded pool;
	// each chunk takes one shard lock. The handler blocks until its
	// whole batch is ingested, so a 200 means the reports are counted.
	// The accepted count is summed per chunk (not read back from the
	// shared aggregator counter, which concurrent requests also move).
	var (
		wg            sync.WaitGroup
		accepted      atomic.Int64
		failed        atomic.Bool
		persistFailed atomic.Bool
		errMu         sync.Mutex
		firstErr      error
		firstIdx      int
	)
	for lo := 0; lo < len(reps); lo += batchChunk {
		// A rejected chunk stops further dispatch; only chunks already
		// in flight can still land after it.
		if failed.Load() {
			break
		}
		hi := min(lo+batchChunk, len(reps))
		if in.st != nil {
			bodyHandedToWAL = true
		}
		in.slots <- struct{}{}
		// Re-check after the (possibly long) wait for a pool slot: a
		// rejection may have landed while this chunk was queued.
		if failed.Load() {
			<-in.slots
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			offset := lo
			defer wg.Done()
			defer func() { <-in.slots }()
			consumed, err := in.ingestChunk(r.Context(), reps, body, ends, lo, hi)
			accepted.Add(int64(consumed))
			if err == nil {
				return
			}
			idx := offset
			var be *core.BatchError
			if errors.As(err, &be) {
				// Re-anchor the chunk-relative index to the batch.
				idx = offset + be.Index
				err = fmt.Errorf("batch report %d: %w", idx, be.Err)
			} else {
				// Not a report rejection: the WAL (or store shutdown)
				// failed. The consumed reports are in the aggregator —
				// Accepted stays accurate — but the durability promise of
				// a 200 cannot be made; this is a server fault, not a
				// client one.
				persistFailed.Store(true)
			}
			failed.Store(true)
			// Chunks fail in arbitrary wall-clock order; keep the
			// rejection with the lowest batch index, matching the
			// "first rejected report" contract.
			errMu.Lock()
			if firstErr == nil || idx < firstIdx {
				firstErr, firstIdx = err, idx
			}
			errMu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	s.ins.ingestReports.Add(uint64(accepted.Load()))
	if firstErr != nil {
		s.ins.rejectedReports.Add(uint64(len(reps)) - uint64(accepted.Load()))
		// The failure reply still carries the exact accepted count so
		// the client knows how much of the batch is in the estimate.
		// Report rejections are the client's fault (400); persistence
		// failures are the server's (500) and must not invite a retry
		// that would double-count the already-consumed reports.
		status := http.StatusBadRequest
		prefix := "rejected: "
		if persistFailed.Load() {
			status, prefix = http.StatusInternalServerError, "persistence failed: "
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(BatchResponse{
			Accepted: int(accepted.Load()),
			Error:    prefix + firstErr.Error(),
			TraceID:  traceID(r),
		})
		return
	}
	s.ins.ingestBatches.Inc()
	writeJSON(w, BatchResponse{Accepted: int(accepted.Load())})
}

// chargeBudget spends count reports against the caller's windowed
// privacy budget when one is configured: 400 without a token header,
// 429 when the token's window budget cannot cover the spend. Returns
// true when ingestion may proceed (including on deployments without a
// budget).
func (s *Server) chargeBudget(w http.ResponseWriter, r *http.Request, count int) bool {
	if s.ledger == nil {
		return true
	}
	token := r.Header.Get(budgetTokenHeader)
	if token == "" {
		httpError(w, r, "windowed deployment enforces a per-round budget; send a stable client token in "+budgetTokenHeader, http.StatusBadRequest)
		return false
	}
	_, span := trace.StartSpan(r.Context(), "ledger.charge")
	span.SetAttr("reports", count)
	err := s.ledger.Charge(token, count)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	if err != nil {
		s.setRetryAfter(w)
		httpError(w, r, err.Error(), http.StatusTooManyRequests)
		return false
	}
	return true
}

// setRetryAfter hints a budget-rejected client at the next bucket
// rotation, when the oldest recorded spend can slide out of the window.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.win.Bucket().Seconds())+1))
}

// checkWindowParam validates an optional window= query parameter on the
// read endpoints: an analyst can pin the window span an answer must
// cover, and gets a 400 instead of a silently mismatched estimate when
// the deployment serves a different span (or a cumulative release).
func (s *Server) checkWindowParam(w http.ResponseWriter, r *http.Request) bool {
	raw := r.URL.Query().Get("window")
	if raw == "" {
		return true
	}
	want, err := time.ParseDuration(raw)
	if err != nil {
		httpError(w, r, "window must be a duration like 10m: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if s.win == nil {
		httpError(w, r, "deployment serves a cumulative release; no sliding window is configured", http.StatusBadRequest)
		return false
	}
	if got := s.win.Window(); want != got {
		httpError(w, r, fmt.Sprintf("deployment serves a %v window; cannot answer window=%v", got, want), http.StatusBadRequest)
		return false
	}
	return true
}

// MarginalResponse is the JSON shape of a /marginal reply.
type MarginalResponse struct {
	// Beta is the queried attribute mask.
	Beta uint64 `json:"beta"`
	// Cells holds the 2^|beta| estimated cell values in compact order.
	Cells []float64 `json:"cells"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Epoch is the materialized view the answer came from.
	Epoch int64 `json:"epoch"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if s.reads == nil {
		s.rejectRole(w, r, "marginal estimates", "single or coordinator")
		return
	}
	if !s.checkWindowParam(w, r) {
		return
	}
	betaStr := r.URL.Query().Get("beta")
	beta, err := strconv.ParseUint(betaStr, 10, 64)
	if err != nil {
		httpError(w, r, "beta must be a decimal attribute mask", http.StatusBadRequest)
		return
	}
	// Serve from the cached epoch: no lock, no snapshot, no
	// reconstruction — O(2^k) marginalization of cached tables at most.
	v := s.reads.engine.Current()
	tab, err := v.Marginal(beta)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, view.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		httpError(w, r, err.Error(), status)
		return
	}
	writeJSON(w, MarginalResponse{Beta: beta, Cells: tab.Cells, N: v.N, Epoch: v.Epoch})
}

// QueryRequest is the JSON body of a /query request: one conjunction in
// Q, or a batch in Queries (both may be set; Q is evaluated first).
// Conjunctions use the internal/query syntax over positional attribute
// names, e.g. "a0=1 AND a3=0".
type QueryRequest struct {
	Q       string   `json:"q,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// QueryResult is one conjunction's answer within a QueryResponse. A
// malformed or out-of-domain query carries its error here, without
// failing the rest of the batch.
type QueryResult struct {
	// Query is the conjunction as submitted.
	Query string `json:"query"`
	// Beta is the attribute mask the conjunction touches (0 on parse
	// errors).
	Beta uint64 `json:"beta,omitempty"`
	// Fraction is the estimated fraction of users matching the query.
	Fraction float64 `json:"fraction"`
	// Count is Fraction scaled by the epoch's report count.
	Count float64 `json:"count"`
	// Error is the per-query failure; empty on success.
	Error string `json:"error,omitempty"`
}

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	// Epoch is the materialized view the answers came from.
	Epoch int64 `json:"epoch"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Results holds one entry per submitted query, in order.
	Results []QueryResult `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	if s.reads == nil {
		s.rejectRole(w, r, "conjunction queries", "single or coordinator")
		return
	}
	if !s.checkWindowParam(w, r) {
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, s.reads.maxQuery)).Decode(&req); err != nil {
		httpError(w, r, "malformed query body: "+err.Error(), http.StatusBadRequest)
		return
	}
	queries := req.Queries
	if req.Q != "" {
		queries = append([]string{req.Q}, queries...)
	}
	if len(queries) == 0 {
		httpError(w, r, "no queries: set q or queries", http.StatusBadRequest)
		return
	}
	// One epoch answers the whole batch, so the results are mutually
	// consistent even while refreshes land concurrently.
	v := s.reads.engine.Current()
	resp := QueryResponse{Epoch: v.Epoch, N: v.N, Results: make([]QueryResult, len(queries))}
	for i, res := range query.EvaluateStrings(v, v.Config().D, nil, queries) {
		out := QueryResult{Query: res.Query}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Beta = res.Conj.Beta()
			out.Fraction = res.Fraction
			out.Count = res.Fraction * float64(v.N)
		}
		resp.Results[i] = out
	}
	writeJSON(w, resp)
}

// handleState exports the node's canonical aggregation state: the local
// state for single and edge roles, the fleet state for a coordinator (so
// coordinators themselves can be pulled, stacking into aggregation
// trees). Version labels are read *before* the state they describe is
// captured: a label that trails the state only makes a future pull
// re-transfer, never skip, fresh data.
//
// The exchange negotiates three shapes:
//
//   - Bare GET /state serves the legacy wire.StateFrame (one merged
//     blob) — what pre-delta pullers and debugging curls expect.
//   - GET /state?components=1 serves a componentized wire.ComponentFrame
//     (per-shard, per-window, or per-constituent states with their own
//     version labels).
//   - Either form answers 304 Not Modified when the caller's
//     If-None-Match (or ?since=) base equals the current version; with
//     ?components=1 a known, non-current base narrows the reply to a
//     delta frame shipping only the components that moved since it.
//
// An unknown base — expired from the history ring, or from before a
// restart (the version salt changed) — falls back to a full frame.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	base, haveBase := parseStateBase(r.Header.Get("If-None-Match"), q.Get("since"))
	if haveBase {
		// Short-circuit before any state is marshaled: an unchanged peer
		// costs headers, not an O(2^d) snapshot plus transfer.
		if ver := s.stateVersion(); base == ver {
			w.Header().Set("ETag", stateETag(ver))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if q.Get("components") != "1" {
		s.serveLegacyState(w, r)
		return
	}
	top, comps, vec, err := s.exportComponents()
	if err != nil {
		httpError(w, r, "exporting state components: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.stateHist.record(top, vec)
	total, err := sumComponentReports(comps)
	if err != nil {
		httpError(w, r, "exporting state components: "+err.Error(), http.StatusInternalServerError)
		return
	}
	wire.SortComponents(comps)
	frame := wire.ComponentFrame{NodeID: s.nodeID, Version: top, N: total, Components: comps}
	mode := "full"
	if haveBase && base != top {
		if baseVec, ok := s.stateHist.lookup(base); ok {
			frame = deltaAgainst(frame, baseVec, vec)
			frame.BaseVersion = base
			sort.Strings(frame.Removed)
			mode = "delta"
		}
	}
	buf, err := wire.EncodeComponentFrame(frame)
	if err != nil {
		httpError(w, r, "framing state components: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Header().Set("ETag", stateETag(top))
	w.Header().Set("X-LDP-Frame", mode)
	_, _ = w.Write(buf)
}

// serveLegacyState is the pre-delta exchange: one merged
// wire.StateFrame.
func (s *Server) serveLegacyState(w http.ResponseWriter, r *http.Request) {
	var (
		ver  = s.stateVersion()
		snap core.Aggregator
		err  error
	)
	if s.fleet != nil {
		// export, not Snapshot: only the engine's serialized builds may
		// record the fleet composition a published epoch is labeled
		// with.
		snap, err = s.fleet.export()
	} else if s.win != nil {
		// A windowed node exports its current window, so a coordinator
		// composes per-peer windowed state through the unchanged pull
		// path: buckets seal and expire edge-side.
		snap, err = s.win.Snapshot()
	} else {
		snap, err = s.agg.Snapshot()
	}
	if err != nil {
		httpError(w, r, "snapshotting state: "+err.Error(), http.StatusInternalServerError)
		return
	}
	blob, err := snap.MarshalState()
	if err != nil {
		httpError(w, r, "marshaling state: "+err.Error(), http.StatusInternalServerError)
		return
	}
	frame, err := wire.EncodeStateFrame(wire.StateFrame{
		NodeID: s.nodeID, Version: ver, N: snap.N(), State: blob,
	})
	if err != nil {
		httpError(w, r, "framing state: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.Header().Set("ETag", stateETag(ver))
	_, _ = w.Write(frame)
}

// handlePull runs one synchronous pull round over every configured peer
// (ignoring backoff schedules) and reports the resulting cluster state —
// the operational "converge now" lever, and what keeps cluster tests
// deterministic.
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	if s.puller == nil {
		s.rejectRole(w, r, "peer pulls", "coordinator")
		return
	}
	s.puller.round(r.Context(), true)
	writeJSON(w, s.clusterStatus())
}

// ViewStatusResponse is the JSON shape of a /view/status or /refresh
// reply: the serving epoch and how far behind the live pipeline it is.
type ViewStatusResponse struct {
	// Epoch is the serving view's build sequence number.
	Epoch int64 `json:"epoch"`
	// ViewN is the number of reports in the serving epoch.
	ViewN int `json:"view_n"`
	// CurrentN is the live pipeline's report count (fleet-wide on a
	// coordinator).
	CurrentN int `json:"current_n"`
	// StalenessReports is CurrentN - ViewN (0 floor): reports not yet
	// visible to readers.
	StalenessReports int `json:"staleness_reports"`
	// AgeSeconds is how long the epoch has been serving.
	AgeSeconds float64 `json:"age_seconds"`
	// BuildMillis is how long the epoch took to build, end to end:
	// snapshot (or delta fold) plus reconstruction, consistency,
	// projection, and sub-cube — the root build span's duration, so
	// /view/status, the ldp_view_build_seconds histogram, and
	// /debug/traces report the same number.
	BuildMillis float64 `json:"build_ms"`
	// SnapshotMillis is how long cutting (full build) or delta-folding
	// (incremental build) the epoch's source state took.
	SnapshotMillis float64 `json:"snapshot_ms"`
	// Incremental reports whether the serving epoch was built by folding
	// a delta into the engine's cached linear sums rather than a cold
	// rebuild.
	Incremental bool `json:"incremental"`
	// FoldedComponents is how many source components (shards, peers)
	// were folded into the serving epoch's snapshot: only the changed
	// ones on an incremental epoch, every component on an arena-backed
	// full rebuild, and 0 when the source has no delta support.
	FoldedComponents int `json:"folded_components,omitempty"`
	// IncrementalBuilds and FullBuilds count the engine's builds by
	// kind since startup; their ratio shows whether the refresh path is
	// riding the delta fast path or falling back to cold rebuilds.
	IncrementalBuilds int64 `json:"incremental_builds"`
	FullBuilds        int64 `json:"full_builds"`
	// Tables is the number of materialized k-way tables.
	Tables int `json:"tables"`
	// RecoveredReports is the number of reports restored from the
	// durable store at startup (0 for memory-only deployments).
	RecoveredReports int `json:"recovered_reports,omitempty"`
	// FromRecovery reports whether the serving epoch contains state
	// restored from the durable store.
	FromRecovery bool `json:"from_recovery,omitempty"`
	// Peers describes, per configured peer, how much of that peer's
	// state the serving epoch contains versus what the fleet holds now
	// (coordinator only).
	Peers []PeerViewStatus `json:"peers,omitempty"`
	// Window describes the sliding-window ring behind the serving view
	// (windowed deployments only).
	Window *WindowStatus `json:"window,omitempty"`
}

// PeerViewStatus is one peer's per-epoch staleness entry in a
// coordinator's /view/status reply.
type PeerViewStatus struct {
	// URL is the configured peer base URL.
	URL string `json:"url"`
	// NodeID is the peer's node id as of the serving epoch (or the
	// latest pull when the epoch predates the peer).
	NodeID string `json:"node_id,omitempty"`
	// ViewN and ViewVersion label the peer's state inside the serving
	// epoch (0 when the epoch contains nothing from this peer).
	ViewN       int    `json:"view_n"`
	ViewVersion uint64 `json:"view_version"`
	// CurrentN and CurrentVersion label the latest accepted pull.
	CurrentN       int    `json:"current_n"`
	CurrentVersion uint64 `json:"current_version"`
	// StalenessReports is CurrentN - ViewN (0 floor): this peer's
	// reports not yet visible to readers.
	StalenessReports int `json:"staleness_reports"`
	// Components is how many named state components of this peer the
	// serving epoch was folded from (an edge's shards, a mid-tier
	// coordinator's pass-through constituents).
	Components int `json:"components,omitempty"`
	// Health is the peer's circuit-breaker state (healthy, backing_off,
	// quarantined); a quarantined peer's view contribution is its last
	// good pull, frozen until a half-open probe succeeds.
	Health string `json:"health,omitempty"`
}

func (s *Server) viewStatus(v *view.View) ViewStatusResponse {
	n := s.reads.src.N()
	recovered := 0
	if s.ingest != nil {
		recovered = s.ingest.recovered
	}
	stats := s.reads.engine.Stats()
	resp := ViewStatusResponse{
		Epoch:             v.Epoch,
		ViewN:             v.N,
		CurrentN:          n,
		StalenessReports:  v.Staleness(n),
		AgeSeconds:        v.Age().Seconds(),
		BuildMillis:       float64(v.BuildDuration.Nanoseconds()) / 1e6,
		SnapshotMillis:    float64(v.SnapshotDuration.Nanoseconds()) / 1e6,
		Incremental:       v.Incremental,
		FoldedComponents:  v.FoldedComponents,
		IncrementalBuilds: stats.IncrementalBuilds,
		FullBuilds:        stats.FullBuilds,
		Tables:            v.Tables(),
		RecoveredReports:  recovered,
		// Every epoch is built from an aggregator seeded with the
		// recovered state, so any epoch of a recovered deployment
		// contains it.
		FromRecovery: recovered > 0,
	}
	if s.fleet != nil {
		resp.Peers = s.peerViewStatus(v)
	}
	resp.Window = s.windowStatus()
	return resp
}

// peerViewStatus joins the serving epoch's composition (what each peer
// contributed to the view) with the fleet's latest pulls (what each
// peer has now), yielding per-peer staleness.
func (s *Server) peerViewStatus(v *view.View) []PeerViewStatus {
	inView := make(map[string]view.Component, len(v.Components))
	for _, c := range v.Components {
		inView[c.URL] = c
	}
	current, _ := s.fleet.status()
	out := make([]PeerViewStatus, 0, len(current))
	for _, cur := range current {
		pvs := PeerViewStatus{
			URL:            cur.URL,
			NodeID:         cur.NodeID,
			CurrentN:       cur.N,
			CurrentVersion: cur.Version,
			Health:         cur.Health,
		}
		if c, ok := inView[cur.URL]; ok {
			pvs.ViewN = c.N
			pvs.ViewVersion = c.Version
			pvs.Components = c.Parts
			if c.ID != "" {
				pvs.NodeID = c.ID
			}
		}
		if st := pvs.CurrentN - pvs.ViewN; st > 0 {
			pvs.StalenessReports = st
		}
		out = append(out, pvs)
	}
	return out
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	if s.reads == nil {
		s.rejectRole(w, r, "view refreshes", "single or coordinator")
		return
	}
	v, err := s.reads.engine.RefreshContext(r.Context())
	if err != nil {
		httpError(w, r, "refresh failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.viewStatus(v))
}

func (s *Server) handleViewStatus(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if s.reads == nil {
		s.rejectRole(w, r, "view status", "single or coordinator")
		return
	}
	writeJSON(w, s.viewStatus(s.reads.engine.Current()))
}

// ViewDiagnosticsResponse is the JSON shape of a /view/diagnostics
// reply: the serving epoch's accuracy diagnostics — the paper's
// theoretical TV error bound at the deployment's parameters, the L1
// mass the consistency stage moved, and the inter-epoch marginal drift
// (see view.Diagnostics for the field semantics).
type ViewDiagnosticsResponse struct {
	// Epoch is the serving view's build sequence number.
	Epoch int64 `json:"epoch"`
	// N is the number of reports in the serving epoch.
	N int `json:"n"`
	// Protocol names the deployment's protocol.
	Protocol string `json:"protocol"`
	view.Diagnostics
}

func (s *Server) handleViewDiagnostics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if s.reads == nil {
		s.rejectRole(w, r, "view diagnostics", "single or coordinator")
		return
	}
	v := s.reads.engine.Current()
	writeJSON(w, ViewDiagnosticsResponse{Epoch: v.Epoch, N: v.N, Protocol: v.Protocol, Diagnostics: v.Diag})
}

// HealthResponse is the JSON shape of a /healthz reply.
type HealthResponse struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Epoch  int64  `json:"epoch"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	resp := HealthResponse{Status: "ok", Role: s.role.String()}
	if s.reads != nil {
		resp.Epoch = s.reads.engine.Epoch()
	}
	writeJSON(w, resp)
}

// DurabilityStatus is the durability section of a /status reply.
type DurabilityStatus struct {
	// Fsync is the WAL durability policy (always, interval, off).
	Fsync string `json:"fsync"`
	// WALSegments and WALBytes describe the live write-ahead log.
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	// LastSnapshotReports is the report count of the newest counter
	// snapshot (0 before the first snapshot).
	LastSnapshotReports int `json:"last_snapshot_reports"`
	// SinceSnapshotReports is the number of reports appended to the WAL
	// after the newest snapshot.
	SinceSnapshotReports int `json:"since_snapshot_reports"`
	// RecoveredReports is the number of reports restored at startup.
	RecoveredReports int `json:"recovered_reports"`
	// TornTailTruncations counts torn WAL records dropped at startup.
	TornTailTruncations int `json:"torn_tail_truncations,omitempty"`
	// LastSnapshotError is the most recent background-compaction
	// failure, if any.
	LastSnapshotError string `json:"last_snapshot_error,omitempty"`
}

// StatusResponse is the JSON shape of a /status reply. Durability is
// present only for deployments with a store; Cluster describes the
// node's role and, on a coordinator, every configured peer.
type StatusResponse struct {
	Protocol   string  `json:"protocol"`
	D          int     `json:"d"`
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	N          int     `json:"n"`
	ReportBits int     `json:"report_bits"`
	Shards     int     `json:"shards"`
	// Health is the durability state machine's state (healthy, degraded,
	// recovering).
	Health     string            `json:"health"`
	Durability *DurabilityStatus `json:"durability,omitempty"`
	Cluster    *ClusterStatus    `json:"cluster,omitempty"`
	Window     *WindowStatus     `json:"window,omitempty"`
}

// clusterStatus assembles the /status cluster block.
func (s *Server) clusterStatus() *ClusterStatus {
	cs := &ClusterStatus{
		Role:   s.role.String(),
		NodeID: s.nodeID,
	}
	cs.StateVersion = s.stateVersion()
	if s.fleet != nil {
		cs.PullIntervalSeconds = s.puller.interval.Seconds()
		cs.Peers, cs.PeerStateSaveError = s.fleet.status()
	}
	return cs
}

// stateVersion is the label a /state export carries right now: the
// mutation counter (fleet-wide on a coordinator) offset by the
// per-process salt. It must be read *before* the state snapshot it
// labels — a trailing label makes a future pull re-transfer, never
// skip, fresh data.
func (s *Server) stateVersion() uint64 {
	if s.fleet != nil {
		return s.verSalt + s.fleet.version()
	}
	if s.win != nil {
		return s.verSalt + s.win.Version()
	}
	return s.verSalt + s.agg.Version()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	cfg := s.protocol.Config()
	resp := StatusResponse{
		Protocol:   s.protocol.Name(),
		D:          cfg.D,
		K:          cfg.K,
		Epsilon:    cfg.Epsilon,
		N:          s.N(), // atomic reads; no lock
		ReportBits: s.protocol.CommunicationBits(),
		Shards:     s.agg.Shards(),
		Health:     s.Health(),
		Cluster:    s.clusterStatus(),
		Window:     s.windowStatus(),
	}
	if st := s.Store(); st != nil {
		stat := st.Status()
		resp.Durability = &DurabilityStatus{
			Fsync:                stat.Fsync,
			WALSegments:          stat.Segments,
			WALBytes:             stat.WALBytes,
			LastSnapshotReports:  stat.SnapshotReports,
			SinceSnapshotReports: stat.SinceSnapshot,
			RecoveredReports:     stat.Recovery.Reports,
			TornTailTruncations:  stat.Recovery.TornTailTruncations,
			LastSnapshotError:    stat.LastSnapshotError,
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
