// Package server provides a minimal HTTP deployment of the marginal
// collection pipeline: clients POST wire-encoded reports to /report, and
// analysts GET reconstructed marginals from /marginal. The paper argues
// its protocols are "eminently suitable for implementation in existing
// LDP deployments" (Section 7); this package is the reference shape of
// such a deployment.
//
// The server owns one aggregator per deployment and serializes access
// with a mutex — aggregation is cheap (O(report) per Consume), so a
// single aggregator suffices well beyond the populations studied here.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
)

// maxReportBytes bounds a single report upload (InpRR at d=20 is 2^20
// bits = 128 KiB, plus framing).
const maxReportBytes = 1 << 18

// Server exposes one protocol deployment over HTTP.
type Server struct {
	protocol core.Protocol
	tag      encoding.Tag

	mu  sync.Mutex
	agg core.Aggregator
}

// New builds a server around a protocol. The protocol's name must have a
// wire tag registered in the encoding package.
func New(p core.Protocol) (*Server, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	return &Server{protocol: p, tag: tag, agg: p.NewAggregator()}, nil
}

// N returns the number of reports consumed so far.
func (s *Server) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.N()
}

// Handler returns the HTTP routes of the deployment:
//
//	POST /report    binary frame (encoding.Marshal) -> 204
//	GET  /marginal  ?beta=<decimal mask>            -> JSON table
//	GET  /status    deployment metadata             -> JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/marginal", s.handleMarginal)
	mux.HandleFunc("/status", s.handleStatus)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > maxReportBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, rep, err := encoding.Unmarshal(frame)
	if err != nil {
		http.Error(w, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("report for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	err = s.agg.Consume(rep)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, "rejected: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// MarginalResponse is the JSON shape of a /marginal reply.
type MarginalResponse struct {
	// Beta is the queried attribute mask.
	Beta uint64 `json:"beta"`
	// Cells holds the 2^|beta| estimated cell values in compact order.
	Cells []float64 `json:"cells"`
	// N is the number of reports behind the estimate.
	N int `json:"n"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	betaStr := r.URL.Query().Get("beta")
	beta, err := strconv.ParseUint(betaStr, 10, 64)
	if err != nil {
		http.Error(w, "beta must be a decimal attribute mask", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	tab, err := s.agg.Estimate(beta)
	n := s.agg.N()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, MarginalResponse{Beta: beta, Cells: tab.Cells, N: n})
}

// StatusResponse is the JSON shape of a /status reply.
type StatusResponse struct {
	Protocol   string  `json:"protocol"`
	D          int     `json:"d"`
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	N          int     `json:"n"`
	ReportBits int     `json:"report_bits"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	cfg := s.protocol.Config()
	s.mu.Lock()
	n := s.agg.N()
	s.mu.Unlock()
	writeJSON(w, StatusResponse{
		Protocol:   s.protocol.Name(),
		D:          cfg.D,
		K:          cfg.K,
		Epsilon:    cfg.Epsilon,
		N:          n,
		ReportBits: s.protocol.CommunicationBits(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
