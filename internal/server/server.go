// Package server provides an HTTP deployment of the marginal collection
// pipeline: clients POST wire-encoded reports to /report (one frame) or
// /report/batch (length-prefixed frames), and analysts read estimates
// from /marginal and /query. The paper argues its protocols are
// "eminently suitable for implementation in existing LDP deployments"
// (Section 7); this package is the reference shape of such a deployment
// at scale.
//
// # Epochs and staleness
//
// The read side serves from a materialized view (internal/view): all
// C(d,k) k-way marginals are reconstructed once per epoch from a
// snapshot of the aggregation shards, made mutually consistent, and
// published as an immutable view behind an atomic pointer. /marginal
// and /query answer from the cached epoch in O(2^k) work without taking
// any lock — reads never block ingestion and never trigger
// reconstruction. Answers are therefore stale by up to one refresh
// period: the epoch advances on the configured policy (Options.Refresh:
// wall-time interval and/or report-count delta) and on explicit
// POST /refresh. /view/status reports the serving epoch, its report
// count, and how many reports have arrived since it was built.
//
// # Ingestion architecture
//
// The server owns one core.ShardedAggregator: P per-shard accumulators
// behind P mutexes, merged on demand. A single /report locks exactly one
// shard for one Consume; a /report/batch is decoded outside any lock,
// split into chunks, and each chunk is ingested into a round-robin shard
// under one lock acquisition through a bounded worker pool, so batches
// amortize both HTTP and locking overhead and scale across cores.
// /status reads the report count from an atomic counter and never takes
// a lock; /marginal merges a snapshot of the shards (stalling ingestion
// for at most one shard at a time) and reconstructs from the private
// snapshot.
//
// Shard count defaults to GOMAXPROCS. More shards than concurrent
// writers buys nothing and grows aggregator memory (O(shards * state));
// fewer shards re-introduces contention. See Options.Shards.
//
// # Durability
//
// With Options.Store set, the deployment survives crashes: every
// accepted report is appended to a write-ahead log (internal/store)
// before the request is acked, under the store's fsync policy, and the
// aggregation state is periodically compacted into counter snapshots.
// On construction the server seeds its sharded aggregator with the
// state the store recovered — so the view engine's first epoch already
// serves everything that survived — and registers the aggregator as
// the store's snapshot source. Close flushes the log and writes a
// final snapshot. GET /status reports the WAL footprint and GET
// /view/status whether the serving epoch contains recovered reports.
// Without a store the deployment is memory-only, exactly as before.
//
// # Batch semantics
//
// A batch is not atomic: reports preceding a rejected report (and any
// chunks already in flight when the rejection happens) remain consumed,
// matching the Aggregator.ConsumeBatch contract; further chunks are not
// dispatched. The 400 rejection reply is a BatchResponse carrying the
// exact number of reports ingested plus the first rejection, identified
// by its batch-global index. Under local differential privacy every
// report is individually valid or individually rejected, so partial
// ingestion never corrupts the estimate — it only under-counts the
// failed batch.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/view"
)

// maxReportBytes bounds a single report upload, matching the largest
// frame the batch format accepts.
const maxReportBytes = encoding.MaxFrameBytes

// defaultMaxBatchBytes bounds a /report/batch body: 16 MiB holds over a
// million typical frames (InpHT at d=20 is a few bytes per report).
const defaultMaxBatchBytes = 16 << 20

// maxBatchReports bounds the decoded report count of one batch request,
// capping the memory amplification of a body packed with minimal
// frames (a decoded Report is an order of magnitude larger than a
// 3-byte frame). Populations beyond it split across multiple posts.
const maxBatchReports = 1 << 20

// batchChunk is the number of decoded reports ingested per shard lock
// acquisition. Large enough to amortize locking, small enough that a
// large batch spreads across every shard.
const batchChunk = 1024

// Options tunes a deployment; the zero value selects the defaults.
type Options struct {
	// Shards is the number of per-shard accumulators; <= 0 selects
	// GOMAXPROCS.
	Shards int
	// IngestWorkers bounds the number of goroutines concurrently writing
	// batch chunks into shards, and likewise the number of /report/batch
	// requests being buffered and decoded at once; <= 0 matches the
	// shard count.
	IngestWorkers int
	// MaxBatchBytes bounds a /report/batch body; <= 0 selects 16 MiB.
	MaxBatchBytes int64
	// Refresh is the automatic view-refresh policy; the zero value means
	// the view only advances on POST /refresh.
	Refresh view.Policy
	// View tunes the per-epoch post-processing (consistency rounds,
	// simplex projection).
	View view.Options
	// Store, when non-nil, makes ingestion durable: accepted reports are
	// appended to its write-ahead log before the ack, the recovered
	// state seeds the aggregator, and the aggregator becomes the
	// store's snapshot source. The server owns the store from here on:
	// Server.Close closes it.
	Store *store.Store
}

// Server exposes one protocol deployment over HTTP. Safe for concurrent
// use by any number of HTTP client goroutines.
type Server struct {
	protocol core.Protocol
	tag      encoding.Tag

	agg       *core.ShardedAggregator
	engine    *view.Engine
	st        *store.Store  // nil for a memory-only deployment
	recovered int           // reports restored from the store at startup
	ingest    chan struct{} // bounded worker-pool slots for batch chunks
	batches   chan struct{} // bounds whole /report/batch requests in flight
	maxBatch  int64
}

// New builds a server around a protocol with default Options. The
// protocol's name must have a wire tag registered in the encoding
// package.
func New(p core.Protocol) (*Server, error) {
	return NewWithOptions(p, Options{})
}

// NewWithOptions builds a server around a protocol with explicit tuning.
func NewWithOptions(p core.Protocol, opts Options) (*Server, error) {
	// The server owns the store from the moment it is passed in: on any
	// construction failure it must be closed, or its committer
	// goroutines and open WAL segment leak (callers are told not to
	// close it themselves).
	fail := func(err error) (*Server, error) {
		if opts.Store != nil {
			_ = opts.Store.Close()
		}
		return nil, err
	}
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return fail(err)
	}
	agg := core.NewSharded(p, opts.Shards)
	recovered := 0
	if opts.Store != nil {
		rec, _ := opts.Store.Recovered()
		if rec != nil && rec.N() > 0 {
			// Seed the live pipeline before the engine builds its first
			// epoch, so recovered reports are served immediately.
			if err := agg.Merge(rec); err != nil {
				return fail(fmt.Errorf("server: seeding recovered state: %w", err))
			}
			recovered = rec.N()
		}
		// The recovered state now lives in the sharded aggregator; let
		// the store drop its copy.
		opts.Store.ReleaseRecovered()
		opts.Store.SetSource(agg.Snapshot)
	}
	workers := opts.IngestWorkers
	if workers <= 0 {
		workers = agg.Shards()
	}
	maxBatch := opts.MaxBatchBytes
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatchBytes
	}
	engine, err := view.NewEngine(agg, p, view.EngineOptions{Refresh: opts.Refresh, Build: opts.View})
	if err != nil {
		return fail(err)
	}
	return &Server{
		protocol:  p,
		tag:       tag,
		agg:       agg,
		engine:    engine,
		st:        opts.Store,
		recovered: recovered,
		ingest:    make(chan struct{}, workers),
		batches:   make(chan struct{}, workers),
		maxBatch:  maxBatch,
	}, nil
}

// Close stops the view engine's refresh loop and, for a durable
// deployment, flushes the write-ahead log and writes a final counter
// snapshot. The server's handlers remain usable (serving the last
// published epoch, rejecting ingestion); Close is idempotent.
func (s *Server) Close() error {
	s.engine.Close()
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}

// Store returns the durability layer, or nil for a memory-only
// deployment.
func (s *Server) Store() *store.Store { return s.st }

// View returns the engine publishing the server's materialized view.
func (s *Server) View() *view.Engine { return s.engine }

// N returns the number of reports consumed so far. Lock-free.
func (s *Server) N() int { return s.agg.N() }

// Shards returns the number of aggregation shards of the deployment.
func (s *Server) Shards() int { return s.agg.Shards() }

// Handler returns the HTTP routes of the deployment:
//
//	POST /report        binary frame (encoding.Marshal)        -> 204
//	POST /report/batch  length-prefixed frames (MarshalBatch)  -> JSON count
//	GET  /marginal      ?beta=<decimal mask>                   -> JSON table (cached epoch)
//	POST /query         JSON conjunction batch                 -> JSON per-query answers
//	POST /refresh       build + publish the next epoch         -> JSON view status
//	GET  /view/status   serving epoch, staleness, build time   -> JSON
//	GET  /status        deployment metadata                    -> JSON
//	GET  /healthz       liveness probe                         -> JSON ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/report/batch", s.handleBatch)
	mux.HandleFunc("/marginal", s.handleMarginal)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/refresh", s.handleRefresh)
	mux.HandleFunc("/view/status", s.handleViewStatus)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > maxReportBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, rep, err := encoding.Unmarshal(frame)
	if err != nil {
		http.Error(w, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("report for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}
	var rejected error
	var err2 error
	if s.st != nil {
		// The frame is appended to the WAL (honoring the fsync policy)
		// before the ack below; a single report logs as a one-frame batch.
		batch := encoding.AppendFrame(nil, frame)
		err2 = s.st.Ingest(batch, func() (int, int, error) {
			if err := s.agg.Consume(rep); err != nil {
				rejected = err
				return 0, 0, err
			}
			return 1, len(batch), nil
		})
	} else if err := s.agg.Consume(rep); err != nil {
		rejected = err
	}
	if rejected != nil {
		http.Error(w, "rejected: "+rejected.Error(), http.StatusBadRequest)
		return
	}
	if err2 != nil {
		// Consumed but not durably logged: a server fault, not a client
		// one. The report is in memory and the next snapshot captures
		// it, but the durability promise of the ack cannot be made.
		http.Error(w, "persistence failed: "+err2.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestChunk feeds the decoded chunk reps[lo:hi] into the sharded
// aggregator — through the store's consume+log pair when the deployment
// is durable, so the accepted prefix of the chunk is in the WAL before
// the batch handler acks. The logged payload is the chunk's slice of
// the request body (body and ends as returned by UnmarshalBatchEnds):
// the validated wire bytes verbatim. Group commit in the store keeps
// concurrent chunks from serializing on the fsync.
//
// The returned count is how many of the chunk's reports entered the
// aggregator, regardless of the error: on a report rejection it is the
// accepted prefix, and on a WAL failure (which can mask a rejection)
// it is still exactly what the aggregator consumed.
func (s *Server) ingestChunk(reps []core.Report, body []byte, ends []int, lo, hi int) (int, error) {
	chunk := reps[lo:hi]
	if s.st == nil {
		err := s.agg.ConsumeBatch(chunk)
		if err == nil {
			return len(chunk), nil
		}
		var be *core.BatchError
		if errors.As(err, &be) {
			return be.Index, err
		}
		return 0, err
	}
	start := startOf(ends, lo)
	applied := 0
	err := s.st.Ingest(body[start:ends[hi-1]], func() (int, int, error) {
		err := s.agg.ConsumeBatch(chunk)
		if err == nil {
			applied = len(chunk)
			return applied, ends[hi-1] - start, nil
		}
		var be *core.BatchError
		if errors.As(err, &be) && be.Index > 0 {
			applied = be.Index
			return applied, ends[lo+be.Index-1] - start, err
		}
		return 0, 0, err
	})
	return applied, err
}

// startOf returns the byte offset in the request body where report lo's
// frame begins.
func startOf(ends []int, lo int) int {
	if lo > 0 {
		return ends[lo-1]
	}
	return 0
}

// BatchResponse is the JSON shape of a /report/batch reply — both the
// 200 success reply and the 400 rejection reply. On rejection, Accepted
// is the exact number of reports ingested before ingestion stopped
// (chunks already in flight when the rejection happened may have
// completed), and Error describes the first rejected report by its
// batch-global index. Clients should treat Accepted as authoritative
// and not blindly re-post a failed batch.
type BatchResponse struct {
	// Accepted is the number of reports ingested from the batch.
	Accepted int `json:"accepted"`
	// Error is the rejection reason; empty on success.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Bound whole batch requests in flight, not just the shard writes:
	// buffering and decoding a body costs up to maxBatch bytes plus the
	// decoded reports, so excess requests wait here (HTTP backpressure)
	// instead of amplifying memory without bound.
	s.batches <- struct{}{}
	defer func() { <-s.batches }()
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBatch+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBatch {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	tag, reps, ends, err := encoding.UnmarshalBatchEnds(body, maxBatchReports)
	if err != nil {
		http.Error(w, "malformed batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tag != s.tag {
		http.Error(w, fmt.Sprintf("batch for protocol tag %d, deployment runs %d", tag, s.tag), http.StatusBadRequest)
		return
	}

	// Fan the decoded reports out in chunks through the bounded pool;
	// each chunk takes one shard lock. The handler blocks until its
	// whole batch is ingested, so a 200 means the reports are counted.
	// The accepted count is summed per chunk (not read back from the
	// shared aggregator counter, which concurrent requests also move).
	var (
		wg            sync.WaitGroup
		accepted      atomic.Int64
		failed        atomic.Bool
		persistFailed atomic.Bool
		errMu         sync.Mutex
		firstErr      error
		firstIdx      int
	)
	for lo := 0; lo < len(reps); lo += batchChunk {
		// A rejected chunk stops further dispatch; only chunks already
		// in flight can still land after it.
		if failed.Load() {
			break
		}
		hi := min(lo+batchChunk, len(reps))
		s.ingest <- struct{}{}
		// Re-check after the (possibly long) wait for a pool slot: a
		// rejection may have landed while this chunk was queued.
		if failed.Load() {
			<-s.ingest
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			offset := lo
			defer wg.Done()
			defer func() { <-s.ingest }()
			consumed, err := s.ingestChunk(reps, body, ends, lo, hi)
			accepted.Add(int64(consumed))
			if err == nil {
				return
			}
			idx := offset
			var be *core.BatchError
			if errors.As(err, &be) {
				// Re-anchor the chunk-relative index to the batch.
				idx = offset + be.Index
				err = fmt.Errorf("batch report %d: %w", idx, be.Err)
			} else {
				// Not a report rejection: the WAL (or store shutdown)
				// failed. The consumed reports are in the aggregator —
				// Accepted stays accurate — but the durability promise of
				// a 200 cannot be made; this is a server fault, not a
				// client one.
				persistFailed.Store(true)
			}
			failed.Store(true)
			// Chunks fail in arbitrary wall-clock order; keep the
			// rejection with the lowest batch index, matching the
			// "first rejected report" contract.
			errMu.Lock()
			if firstErr == nil || idx < firstIdx {
				firstErr, firstIdx = err, idx
			}
			errMu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		// The failure reply still carries the exact accepted count so
		// the client knows how much of the batch is in the estimate.
		// Report rejections are the client's fault (400); persistence
		// failures are the server's (500) and must not invite a retry
		// that would double-count the already-consumed reports.
		status, prefix := http.StatusBadRequest, "rejected: "
		if persistFailed.Load() {
			status, prefix = http.StatusInternalServerError, "persistence failed: "
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(BatchResponse{
			Accepted: int(accepted.Load()),
			Error:    prefix + firstErr.Error(),
		})
		return
	}
	writeJSON(w, BatchResponse{Accepted: int(accepted.Load())})
}

// MarginalResponse is the JSON shape of a /marginal reply.
type MarginalResponse struct {
	// Beta is the queried attribute mask.
	Beta uint64 `json:"beta"`
	// Cells holds the 2^|beta| estimated cell values in compact order.
	Cells []float64 `json:"cells"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Epoch is the materialized view the answer came from.
	Epoch int64 `json:"epoch"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	betaStr := r.URL.Query().Get("beta")
	beta, err := strconv.ParseUint(betaStr, 10, 64)
	if err != nil {
		http.Error(w, "beta must be a decimal attribute mask", http.StatusBadRequest)
		return
	}
	// Serve from the cached epoch: no lock, no snapshot, no
	// reconstruction — O(2^k) marginalization of cached tables at most.
	v := s.engine.Current()
	tab, err := v.Marginal(beta)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, view.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, MarginalResponse{Beta: beta, Cells: tab.Cells, N: v.N, Epoch: v.Epoch})
}

// QueryRequest is the JSON body of a /query request: one conjunction in
// Q, or a batch in Queries (both may be set; Q is evaluated first).
// Conjunctions use the internal/query syntax over positional attribute
// names, e.g. "a0=1 AND a3=0".
type QueryRequest struct {
	Q       string   `json:"q,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// QueryResult is one conjunction's answer within a QueryResponse. A
// malformed or out-of-domain query carries its error here, without
// failing the rest of the batch.
type QueryResult struct {
	// Query is the conjunction as submitted.
	Query string `json:"query"`
	// Beta is the attribute mask the conjunction touches (0 on parse
	// errors).
	Beta uint64 `json:"beta,omitempty"`
	// Fraction is the estimated fraction of users matching the query.
	Fraction float64 `json:"fraction"`
	// Count is Fraction scaled by the epoch's report count.
	Count float64 `json:"count"`
	// Error is the per-query failure; empty on success.
	Error string `json:"error,omitempty"`
}

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	// Epoch is the materialized view the answers came from.
	Epoch int64 `json:"epoch"`
	// N is the number of reports behind the serving epoch.
	N int `json:"n"`
	// Results holds one entry per submitted query, in order.
	Results []QueryResult `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "malformed query body: "+err.Error(), http.StatusBadRequest)
		return
	}
	queries := req.Queries
	if req.Q != "" {
		queries = append([]string{req.Q}, queries...)
	}
	if len(queries) == 0 {
		http.Error(w, "no queries: set q or queries", http.StatusBadRequest)
		return
	}
	// One epoch answers the whole batch, so the results are mutually
	// consistent even while refreshes land concurrently.
	v := s.engine.Current()
	resp := QueryResponse{Epoch: v.Epoch, N: v.N, Results: make([]QueryResult, len(queries))}
	for i, res := range query.EvaluateStrings(v, v.Config().D, nil, queries) {
		out := QueryResult{Query: res.Query}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Beta = res.Conj.Beta()
			out.Fraction = res.Fraction
			out.Count = res.Fraction * float64(v.N)
		}
		resp.Results[i] = out
	}
	writeJSON(w, resp)
}

// ViewStatusResponse is the JSON shape of a /view/status or /refresh
// reply: the serving epoch and how far behind the live pipeline it is.
type ViewStatusResponse struct {
	// Epoch is the serving view's build sequence number.
	Epoch int64 `json:"epoch"`
	// ViewN is the number of reports in the serving epoch.
	ViewN int `json:"view_n"`
	// CurrentN is the live aggregator's report count.
	CurrentN int `json:"current_n"`
	// StalenessReports is CurrentN - ViewN (0 floor): reports not yet
	// visible to readers.
	StalenessReports int `json:"staleness_reports"`
	// AgeSeconds is how long the epoch has been serving.
	AgeSeconds float64 `json:"age_seconds"`
	// BuildMillis is how long the epoch took to build.
	BuildMillis float64 `json:"build_ms"`
	// Tables is the number of materialized k-way tables.
	Tables int `json:"tables"`
	// RecoveredReports is the number of reports restored from the
	// durable store at startup (0 for memory-only deployments).
	RecoveredReports int `json:"recovered_reports,omitempty"`
	// FromRecovery reports whether the serving epoch contains state
	// restored from the durable store.
	FromRecovery bool `json:"from_recovery,omitempty"`
}

func (s *Server) viewStatus(v *view.View) ViewStatusResponse {
	n := s.agg.N()
	return ViewStatusResponse{
		Epoch:            v.Epoch,
		ViewN:            v.N,
		CurrentN:         n,
		StalenessReports: v.Staleness(n),
		AgeSeconds:       v.Age().Seconds(),
		BuildMillis:      float64(v.BuildDuration.Nanoseconds()) / 1e6,
		Tables:           v.Tables(),
		RecoveredReports: s.recovered,
		// Every epoch is built from an aggregator seeded with the
		// recovered state, so any epoch of a recovered deployment
		// contains it.
		FromRecovery: s.recovered > 0,
	}
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	v, err := s.engine.Refresh()
	if err != nil {
		http.Error(w, "refresh failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.viewStatus(v))
}

func (s *Server) handleViewStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.viewStatus(s.engine.Current()))
}

// HealthResponse is the JSON shape of a /healthz reply.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, HealthResponse{Status: "ok", Epoch: s.engine.Epoch()})
}

// DurabilityStatus is the durability section of a /status reply.
type DurabilityStatus struct {
	// Fsync is the WAL durability policy (always, interval, off).
	Fsync string `json:"fsync"`
	// WALSegments and WALBytes describe the live write-ahead log.
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	// LastSnapshotReports is the report count of the newest counter
	// snapshot (0 before the first snapshot).
	LastSnapshotReports int `json:"last_snapshot_reports"`
	// SinceSnapshotReports is the number of reports appended to the WAL
	// after the newest snapshot.
	SinceSnapshotReports int `json:"since_snapshot_reports"`
	// RecoveredReports is the number of reports restored at startup.
	RecoveredReports int `json:"recovered_reports"`
	// TornTailTruncations counts torn WAL records dropped at startup.
	TornTailTruncations int `json:"torn_tail_truncations,omitempty"`
	// LastSnapshotError is the most recent background-compaction
	// failure, if any.
	LastSnapshotError string `json:"last_snapshot_error,omitempty"`
}

// StatusResponse is the JSON shape of a /status reply. Durability is
// present only for deployments with a store.
type StatusResponse struct {
	Protocol   string            `json:"protocol"`
	D          int               `json:"d"`
	K          int               `json:"k"`
	Epsilon    float64           `json:"epsilon"`
	N          int               `json:"n"`
	ReportBits int               `json:"report_bits"`
	Shards     int               `json:"shards"`
	Durability *DurabilityStatus `json:"durability,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	cfg := s.protocol.Config()
	resp := StatusResponse{
		Protocol:   s.protocol.Name(),
		D:          cfg.D,
		K:          cfg.K,
		Epsilon:    cfg.Epsilon,
		N:          s.agg.N(), // atomic read; no lock
		ReportBits: s.protocol.CommunicationBits(),
		Shards:     s.agg.Shards(),
	}
	if s.st != nil {
		st := s.st.Status()
		resp.Durability = &DurabilityStatus{
			Fsync:                st.Fsync,
			WALSegments:          st.Segments,
			WALBytes:             st.WALBytes,
			LastSnapshotReports:  st.SnapshotReports,
			SinceSnapshotReports: st.SinceSnapshot,
			RecoveredReports:     st.Recovery.Reports,
			TornTailTruncations:  st.Recovery.TornTailTruncations,
			LastSnapshotError:    st.LastSnapshotError,
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
