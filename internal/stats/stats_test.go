package stats

import (
	"math"
	"testing"

	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGammaQKnownValues(t *testing.T) {
	// Q(1, x) = exp(-x); Q(1/2, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		q, err := GammaQ(1, x)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(q, math.Exp(-x), 1e-10) {
			t.Errorf("Q(1,%v) = %v, want %v", x, q, math.Exp(-x))
		}
		q2, err := GammaQ(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(q2, math.Erfc(math.Sqrt(x)), 1e-10) {
			t.Errorf("Q(0.5,%v) = %v, want %v", x, q2, math.Erfc(math.Sqrt(x)))
		}
	}
}

func TestGammaQEdges(t *testing.T) {
	if q, _ := GammaQ(2, 0); q != 1 {
		t.Errorf("Q(a,0) = %v, want 1", q)
	}
	if _, err := GammaQ(0, 1); err == nil {
		t.Error("a=0 should error")
	}
	if _, err := GammaQ(1, -1); err == nil {
		t.Error("x<0 should error")
	}
}

func TestGammaQMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x < 20; x += 0.5 {
		q, err := GammaQ(1.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at x=%v: %v > %v", x, q, prev)
		}
		prev = q
	}
}

func TestChiSquareCriticalValues(t *testing.T) {
	// Textbook critical values.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{1, 0.05, 3.841},
		{1, 0.01, 6.635},
		{2, 0.05, 5.991},
		{3, 0.05, 7.815},
		{4, 0.05, 9.488},
	}
	for _, c := range cases {
		got, err := ChiSquareCritical(c.df, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 0.005) {
			t.Errorf("critical(df=%d, alpha=%v) = %v, want %v", c.df, c.alpha, got, c.want)
		}
	}
	if _, err := ChiSquareCritical(0, 0.05); err == nil {
		t.Error("df=0 should error")
	}
	if _, err := ChiSquareCritical(1, 1.5); err == nil {
		t.Error("alpha>1 should error")
	}
}

func TestChiSquarePValueRoundTrip(t *testing.T) {
	crit, err := ChiSquareCritical(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ChiSquarePValue(crit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 0.05, 1e-9) {
		t.Errorf("p-value at critical = %v, want 0.05", p)
	}
	if _, err := ChiSquarePValue(-1, 1); err == nil {
		t.Error("negative stat should error")
	}
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Error("df=0 should error")
	}
}

func TestChiSquareStatTextbook(t *testing.T) {
	// Classic 2x2 example: perfectly proportional rows give stat 0.
	counts := [][]float64{{10, 20}, {30, 60}}
	stat, df, err := ChiSquareStat(counts)
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 || !almostEq(stat, 0, 1e-9) {
		t.Errorf("stat = %v df = %d, want 0 and 1", stat, df)
	}
	// Hand-computed example.
	counts = [][]float64{{20, 30}, {30, 20}}
	stat, _, err = ChiSquareStat(counts)
	if err != nil {
		t.Fatal(err)
	}
	// Expected all cells 25; stat = 4 * 25/25 = 4.
	if !almostEq(stat, 4, 1e-9) {
		t.Errorf("stat = %v, want 4", stat)
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, _, err := ChiSquareStat(nil); err == nil {
		t.Error("empty table should error")
	}
	if _, _, err := ChiSquareStat([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should error")
	}
	if _, _, err := ChiSquareStat([][]float64{{-1, 2}, {3, 4}}); err == nil {
		t.Error("negative count should error")
	}
	if _, _, err := ChiSquareStat([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("zero-mass table should error")
	}
}

func TestChiSquareIndependenceOnTaxi(t *testing.T) {
	ds := dataset.NewTaxi(100000, 1)
	dep, _ := ds.Mask("CC", "Tip")
	ind, _ := ds.Mask("Far", "Night_pick")
	depTab, _ := ds.Marginal(dep)
	indTab, _ := ds.Marginal(ind)
	n := float64(ds.N())
	res, err := ChiSquareIndependence(depTab, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dependent {
		t.Errorf("CC-Tip should be declared dependent (stat=%v crit=%v)", res.Stat, res.Critical)
	}
	res2, err := ChiSquareIndependence(indTab, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Dependent {
		t.Errorf("Far-NightPick should be declared independent (stat=%v crit=%v)", res2.Stat, res2.Critical)
	}
}

func TestChiSquareIndependenceValidation(t *testing.T) {
	one, _ := marginal.Uniform(0b1)
	if _, err := ChiSquareIndependence(one, 100, 0.05); err == nil {
		t.Error("1-way table should error")
	}
	two, _ := marginal.Uniform(0b11)
	if _, err := ChiSquareIndependence(two, 0, 0.05); err == nil {
		t.Error("n=0 should error")
	}
}

func TestEntropy(t *testing.T) {
	h, err := Entropy([]float64{0.5, 0.5})
	if err != nil || !almostEq(h, 1, 1e-12) {
		t.Errorf("H(fair coin) = %v, want 1 bit", h)
	}
	h, err = Entropy([]float64{1, 0})
	if err != nil || h != 0 {
		t.Errorf("H(point mass) = %v, want 0", h)
	}
	if _, err := Entropy([]float64{-0.1, 1.1}); err == nil {
		t.Error("negative probability should error")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// p(a,b) = p(a)p(b) => MI = 0.
	tab, _ := marginal.FromCells(0b11, []float64{0.06, 0.14, 0.24, 0.56})
	mi, err := MutualInformation(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mi, 0, 1e-9) {
		t.Errorf("MI of independent pair = %v, want 0", mi)
	}
}

func TestMutualInformationPerfectlyCorrelated(t *testing.T) {
	// A = B fair coin: MI = 1 bit.
	tab, _ := marginal.FromCells(0b11, []float64{0.5, 0, 0, 0.5})
	mi, err := MutualInformation(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mi, 1, 1e-9) {
		t.Errorf("MI of identical coins = %v, want 1", mi)
	}
	one, _ := marginal.Uniform(0b1)
	if _, err := MutualInformation(one); err == nil {
		t.Error("1-way table should error")
	}
}

func TestMutualInformationNonNegative(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		cells := make([]float64, 4)
		var sum float64
		for i := range cells {
			cells[i] = r.Float64()
			sum += cells[i]
		}
		for i := range cells {
			cells[i] /= sum
		}
		tab, _ := marginal.FromCells(0b11, cells)
		mi, err := MutualInformation(tab)
		if err != nil {
			t.Fatal(err)
		}
		if mi < 0 {
			t.Fatalf("negative MI %v for %v", mi, cells)
		}
	}
}

func TestPearsonMatrixTaxi(t *testing.T) {
	ds := dataset.NewTaxi(60000, 5)
	m, err := PearsonMatrix(ds.Records, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.D; i++ {
		if m[i][i] != 1 {
			t.Errorf("diagonal[%d] = %v, want 1", i, m[i][i])
		}
		for j := 0; j < ds.D; j++ {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
			if i != j && (m[i][j] < -1 || m[i][j] > 1) {
				t.Errorf("correlation out of range: %v", m[i][j])
			}
		}
	}
	cc, tip := dataset.TaxiCC, dataset.TaxiTip
	if m[cc][tip] < 0.3 {
		t.Errorf("CC-Tip correlation = %v, want strong", m[cc][tip])
	}
	if _, err := PearsonMatrix(nil, 4); err == nil {
		t.Error("no records should error")
	}
	if _, err := PearsonMatrix(ds.Records, 0); err == nil {
		t.Error("d=0 should error")
	}
}

func TestPearsonMatrixConstantColumn(t *testing.T) {
	// A constant column has undefined correlation: NaN off-diagonal.
	records := []uint64{0b01, 0b01, 0b11, 0b01}
	m, err := PearsonMatrix(records, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m[0][1]) {
		t.Errorf("correlation with constant column = %v, want NaN", m[0][1])
	}
	if m[0][0] != 1 {
		t.Error("diagonal should still be 1")
	}
}
