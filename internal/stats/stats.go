// Package stats provides the statistical machinery of the paper's
// applications (Section 6): the chi-squared independence test with exact
// p-values (via our own regularized incomplete gamma implementation,
// std-lib only), mutual information, entropy, and Pearson correlation
// matrices over binary datasets.
package stats

import (
	"fmt"
	"math"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = Gamma(a, x) / Gamma(a), computed by the standard series /
// continued-fraction split (Numerical Recipes style). a must be positive
// and x non-negative.
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("stats: GammaQ needs a > 0, got %v", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: GammaQ needs x >= 0, got %v", x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series, accurate for
// x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: gamma series failed to converge for a=%v x=%v", a, x)
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz continued
// fraction, accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: gamma continued fraction failed to converge for a=%v x=%v", a, x)
}

// ChiSquarePValue returns the upper-tail p-value of a chi-squared
// statistic with df degrees of freedom.
func ChiSquarePValue(stat float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom must be positive, got %d", df)
	}
	if stat < 0 {
		return 0, fmt.Errorf("stats: chi-squared statistic must be non-negative, got %v", stat)
	}
	return GammaQ(float64(df)/2, stat/2)
}

// ChiSquareCritical returns the critical value x such that a chi-squared
// variable with df degrees of freedom exceeds x with probability alpha
// (e.g. df=1, alpha=0.05 gives 3.841).
func ChiSquareCritical(df int, alpha float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: alpha %v out of (0,1)", alpha)
	}
	if df <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom must be positive, got %d", df)
	}
	// Bisection on the monotone survival function.
	lo, hi := 0.0, 1.0
	for {
		p, err := ChiSquarePValue(hi, df)
		if err != nil {
			return 0, err
		}
		if p < alpha {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("stats: critical value search diverged")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		p, err := ChiSquarePValue(mid, df)
		if err != nil {
			return 0, err
		}
		if p > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ChiSquareStat computes the Pearson chi-squared independence statistic
// of an r x c contingency table of counts, along with its degrees of
// freedom (r-1)(c-1). Rows/columns with zero mass contribute nothing.
func ChiSquareStat(counts [][]float64) (stat float64, df int, err error) {
	r := len(counts)
	if r == 0 {
		return 0, 0, fmt.Errorf("stats: empty contingency table")
	}
	c := len(counts[0])
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	var total float64
	for i := range counts {
		if len(counts[i]) != c {
			return 0, 0, fmt.Errorf("stats: ragged contingency table")
		}
		for j, v := range counts[i] {
			if v < 0 {
				return 0, 0, fmt.Errorf("stats: negative count %v at (%d,%d)", v, i, j)
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total <= 0 {
		return 0, 0, fmt.Errorf("stats: contingency table has no mass")
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			expected := rowSum[i] * colSum[j] / total
			if expected == 0 {
				continue
			}
			diff := counts[i][j] - expected
			stat += diff * diff / expected
		}
	}
	return stat, (r - 1) * (c - 1), nil
}

// TestResult is the outcome of an independence test.
type TestResult struct {
	// Stat is the chi-squared statistic.
	Stat float64
	// DF is the degrees of freedom.
	DF int
	// PValue is the upper-tail probability of Stat.
	PValue float64
	// Critical is the significance threshold at the requested alpha.
	Critical float64
	// Dependent reports whether the null hypothesis of independence is
	// rejected (Stat > Critical).
	Dependent bool
}

// ChiSquareIndependence tests independence of the two attributes of a
// 2-way marginal table whose cells are probabilities over a population
// of n users (Section 6.1). Estimated tables are simplex-projected
// first so that negative estimated cells cannot produce invalid counts.
func ChiSquareIndependence(tab *marginal.Table, n float64, alpha float64) (*TestResult, error) {
	if tab.K() != 2 {
		return nil, fmt.Errorf("stats: independence test needs a 2-way marginal, got %d-way", tab.K())
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: population size must be positive, got %v", n)
	}
	proj := tab.Clone().ProjectToSimplex()
	counts := [][]float64{
		{proj.Cells[0] * n, proj.Cells[1] * n},
		{proj.Cells[2] * n, proj.Cells[3] * n},
	}
	stat, df, err := ChiSquareStat(counts)
	if err != nil {
		return nil, err
	}
	p, err := ChiSquarePValue(stat, df)
	if err != nil {
		return nil, err
	}
	crit, err := ChiSquareCritical(df, alpha)
	if err != nil {
		return nil, err
	}
	return &TestResult{Stat: stat, DF: df, PValue: p, Critical: crit, Dependent: stat > crit}, nil
}

// Entropy returns the Shannon entropy of a distribution in bits. Zero
// cells contribute nothing; negative cells are rejected.
func Entropy(dist []float64) (float64, error) {
	var h float64
	for _, p := range dist {
		if p < 0 {
			return 0, fmt.Errorf("stats: negative probability %v", p)
		}
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h, nil
}

// MutualInformation computes I(A;B) in bits from a 2-way marginal table
// (Section 6.2). Estimated tables are simplex-projected first.
func MutualInformation(tab *marginal.Table) (float64, error) {
	if tab.K() != 2 {
		return 0, fmt.Errorf("stats: mutual information needs a 2-way marginal, got %d-way", tab.K())
	}
	p := tab.Clone().ProjectToSimplex()
	// Marginals of the two attributes: cells are ordered (b<<1)|a for
	// compact bits (a, b).
	pa := []float64{p.Cells[0] + p.Cells[2], p.Cells[1] + p.Cells[3]}
	pb := []float64{p.Cells[0] + p.Cells[1], p.Cells[2] + p.Cells[3]}
	var mi float64
	for b := 0; b < 2; b++ {
		for a := 0; a < 2; a++ {
			joint := p.Cells[b<<1|a]
			if joint <= 0 {
				continue
			}
			denom := pa[a] * pb[b]
			if denom <= 0 {
				continue
			}
			mi += joint * math.Log2(joint/denom)
		}
	}
	// Clamp tiny negative values from floating point.
	if mi < 0 && mi > -1e-12 {
		mi = 0
	}
	return mi, nil
}

// PearsonMatrix computes the d x d Pearson correlation matrix of the
// binary attribute columns of a record stream — the data behind the
// paper's Figure 3 heatmap. Constant columns yield NaN off-diagonal
// entries, matching the undefined correlation.
func PearsonMatrix(records []uint64, d int) ([][]float64, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("stats: no records")
	}
	if d <= 0 || d > bitops.MaxAttributes {
		return nil, fmt.Errorf("stats: d=%d out of range", d)
	}
	n := float64(len(records))
	mean := make([]float64, d)
	for _, rec := range records {
		for j := 0; j < d; j++ {
			if rec&(1<<uint(j)) != 0 {
				mean[j]++
			}
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	co := make([][]float64, d)
	for i := range co {
		co[i] = make([]float64, d)
	}
	for _, rec := range records {
		for i := 0; i < d; i++ {
			if rec&(1<<uint(i)) == 0 {
				continue
			}
			for j := i; j < d; j++ {
				if rec&(1<<uint(j)) != 0 {
					co[i][j]++
				}
			}
		}
	}
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov := co[i][j]/n - mean[i]*mean[j]
			si := math.Sqrt(mean[i] * (1 - mean[i]))
			sj := math.Sqrt(mean[j] * (1 - mean[j]))
			var r float64
			if i == j {
				r = 1
			} else {
				r = cov / (si * sj) // NaN when a column is constant
			}
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out, nil
}
