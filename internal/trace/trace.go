// Package trace is a zero-dependency distributed-tracing core for the
// deployment: spans with IDs, parents, attributes, and events; W3C
// traceparent extraction and injection so one trace crosses process
// boundaries (a coordinator's pull and the edge answering it share a
// trace ID); an in-memory bounded ring of completed traces served as
// JSON on GET /debug/traces; and a slow-trace log.
//
// The design splits responsibilities so the hot path stays cheap and
// lock-free where it matters:
//
//   - A Tracer owns the completed-trace ring and mints root spans
//     (either fresh, or continuing a remote context extracted from a
//     traceparent header).
//   - Child spans are created from a context.Context via StartSpan and
//     need no Tracer: they hang off the root's shared trace record.
//     When the context carries no span, StartSpan returns a nil *Span
//     whose methods all no-op, so instrumented layers never branch on
//     "is tracing on".
//   - Ending a span appends one immutable record to the trace under the
//     trace's mutex; readers (the /debug/traces handler) only ever see
//     finished records, so scraping races nothing.
//
// Every trace is recorded (there is no sampling): the ring is bounded,
// spans per trace are capped (overflow counts as dropped, never
// blocks), and a root that out-lives the slow threshold is logged.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TraceParentHeader is the W3C trace-context header carrying a trace
// across process boundaries.
const TraceParentHeader = "traceparent"

// maxSpansPerTrace caps one trace's record list; spans ended beyond it
// are counted in Stats.DroppedSpans instead of growing without bound
// (a runaway loop inside one request must not eat the heap).
const maxSpansPerTrace = 256

// DefaultCapacity is the completed-trace ring size used when
// Options.Capacity is 0.
const DefaultCapacity = 128

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// Attr is one span attribute. Values are stringified at set time, so a
// record never retains references into request state.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one timestamped annotation inside a span.
type Event struct {
	// OffsetMicros is the event time relative to the span start.
	OffsetMicros int64  `json:"offset_us"`
	Message      string `json:"message"`
}

// SpanRecord is one finished span as retained in the ring and rendered
// on /debug/traces. Immutable once appended.
type SpanRecord struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartOffsetMicros is the span start relative to the trace root's
	// start (negative when a remote parent started earlier).
	StartOffsetMicros int64   `json:"start_offset_us"`
	DurationMicros    int64   `json:"duration_us"`
	Attrs             []Attr  `json:"attrs,omitempty"`
	Events            []Event `json:"events,omitempty"`
}

// traceData is the shared record of one trace: every finished span,
// appended under mu. The root span holds it and hands it to children
// through the context.
type traceData struct {
	tracer  *Tracer
	traceID TraceID
	start   time.Time // root span start; offsets are relative to it
	remote  bool      // the trace began in another process

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

// Span is one in-flight operation. A nil *Span is valid and inert, so
// instrumented code paths never need to check whether tracing is
// active. All methods are safe for use by the single goroutine running
// the operation; distinct spans of one trace may run concurrently.
type Span struct {
	td     *traceData
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool

	attrs  []Attr
	events []Event
	ended  atomic.Bool
}

// TraceID returns the span's trace id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.td.traceID
}

// SpanID returns the span's id (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr records a key/value attribute on the span. The value is
// stringified immediately.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case error:
		v = x.Error()
	default:
		v = fmt.Sprint(x)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// AddEvent records a timestamped annotation inside the span.
func (s *Span) AddEvent(msg string) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{
		OffsetMicros: time.Since(s.start).Microseconds(),
		Message:      msg,
	})
}

// End finishes the span, appending its immutable record to the trace.
// Ending the root additionally publishes the trace into the tracer's
// ring (and the slow-trace log when it qualifies). End is idempotent;
// only the first call records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		SpanID:            s.id.String(),
		Name:              s.name,
		StartOffsetMicros: s.start.Sub(s.td.start).Microseconds(),
		DurationMicros:    now.Sub(s.start).Microseconds(),
		Attrs:             s.attrs,
		Events:            s.events,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	td := s.td
	td.mu.Lock()
	if len(td.spans) < maxSpansPerTrace {
		td.spans = append(td.spans, rec)
	} else {
		td.dropped++
	}
	td.mu.Unlock()
	tr := td.tracer
	tr.spansTotal.Add(1)
	if s.root {
		tr.record(td, rec, now)
	}
}

// Discard abandons a root span without recording its trace — for
// periodic operations that turned out to be no-ops (an empty window
// advance), which would otherwise flood the ring. Child spans already
// ended under this root are discarded with it. No-op on non-root or
// already-ended spans.
func (s *Span) Discard() {
	if s == nil || !s.root {
		return
	}
	s.ended.Store(true)
}

type ctxKey struct{}

// FromContext returns the active span of ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWith returns ctx carrying span as the active span.
func ContextWith(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// StartSpan opens a child of ctx's active span, returning the derived
// context and the child. When ctx carries no span the returned span is
// nil (inert) and ctx is returned unchanged — instrumentation points
// need no tracer and no enablement check.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || parent.td == nil {
		return ctx, nil
	}
	child := &Span{
		td:     parent.td,
		id:     newSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return ContextWith(ctx, child), child
}

// Options tunes a Tracer. The zero value selects the defaults.
type Options struct {
	// Capacity is the completed-trace ring size; <= 0 selects
	// DefaultCapacity.
	Capacity int
	// SlowThreshold is the root-span duration at or above which a
	// completed trace is reported through SlowLog; <= 0 disables the
	// slow-trace log.
	SlowThreshold time.Duration
	// SlowLog receives one line per slow trace (trace id, root name,
	// duration). Nil disables the slow-trace log.
	SlowLog func(traceID, rootName string, d time.Duration)
}

// Tracer mints root spans and retains completed traces in a bounded
// ring for GET /debug/traces.
type Tracer struct {
	opts Options

	mu   sync.Mutex
	ring []*completedTrace // newest last; len <= capacity
	seq  uint64

	spansTotal   atomic.Uint64
	tracesTotal  atomic.Uint64
	droppedTotal atomic.Uint64
}

// completedTrace pairs a finished root with its trace record.
type completedTrace struct {
	td       *traceData
	root     SpanRecord
	endedAt  time.Time
	duration time.Duration
	seq      uint64
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	return &Tracer{opts: opts}
}

// StartRoot opens a fresh root span with a new trace id.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return t.startRoot(ctx, name, newTraceID(), SpanID{}, false)
}

// StartRemoteRoot opens a root span continuing a trace begun in another
// process: the given trace id is kept and the remote span becomes the
// parent, so both processes' /debug/traces show one trace id.
func (t *Tracer) StartRemoteRoot(ctx context.Context, name string, traceID TraceID, parent SpanID) (context.Context, *Span) {
	if traceID.IsZero() {
		return t.StartRoot(ctx, name)
	}
	return t.startRoot(ctx, name, traceID, parent, true)
}

func (t *Tracer) startRoot(ctx context.Context, name string, traceID TraceID, parent SpanID, remote bool) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	now := time.Now()
	td := &traceData{tracer: t, traceID: traceID, start: now, remote: remote}
	root := &Span{
		td:     td,
		id:     newSpanID(),
		parent: parent,
		name:   name,
		start:  now,
		root:   true,
	}
	return ContextWith(ctx, root), root
}

// record publishes a finished trace into the ring.
func (t *Tracer) record(td *traceData, root SpanRecord, endedAt time.Time) {
	d := time.Duration(root.DurationMicros) * time.Microsecond
	t.tracesTotal.Add(1)
	td.mu.Lock()
	dropped := td.dropped
	td.mu.Unlock()
	if dropped > 0 {
		t.droppedTotal.Add(uint64(dropped))
	}
	t.mu.Lock()
	t.seq++
	ct := &completedTrace{td: td, root: root, endedAt: endedAt, duration: d, seq: t.seq}
	if len(t.ring) >= t.opts.Capacity {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = ct
	} else {
		t.ring = append(t.ring, ct)
	}
	t.mu.Unlock()
	if t.opts.SlowLog != nil && t.opts.SlowThreshold > 0 && d >= t.opts.SlowThreshold {
		t.opts.SlowLog(td.traceID.String(), root.Name, d)
	}
}

// Stats is a point-in-time description of the tracer.
type Stats struct {
	// Spans is the number of span records finished since startup.
	Spans uint64
	// Traces is the number of completed (root-ended) traces.
	Traces uint64
	// DroppedSpans counts span records discarded because their trace
	// exceeded the per-trace span cap.
	DroppedSpans uint64
	// Retained is the number of traces currently held in the ring.
	Retained int
}

// Stats reports the tracer's counters.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	retained := len(t.ring)
	t.mu.Unlock()
	return Stats{
		Spans:        t.spansTotal.Load(),
		Traces:       t.tracesTotal.Load(),
		DroppedSpans: t.droppedTotal.Load(),
		Retained:     retained,
	}
}

// TraceJSON is one completed trace as rendered on /debug/traces.
type TraceJSON struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's name, repeated at the top level so a
	// scrape can be filtered without descending into spans.
	Root string `json:"root"`
	// Remote reports whether the trace began in another process (the
	// root continued an extracted traceparent).
	Remote         bool         `json:"remote,omitempty"`
	EndedAt        time.Time    `json:"ended_at"`
	DurationMicros int64        `json:"duration_us"`
	DroppedSpans   int          `json:"dropped_spans,omitempty"`
	Spans          []SpanRecord `json:"spans"`
}

// TracesResponse is the JSON shape of a /debug/traces reply.
type TracesResponse struct {
	// Traces holds the retained completed traces, newest first.
	Traces []TraceJSON `json:"traces"`
	// Spans, CompletedTraces, and DroppedSpans are the tracer's
	// lifetime counters.
	Spans           uint64 `json:"spans_total"`
	CompletedTraces uint64 `json:"traces_total"`
	DroppedSpans    uint64 `json:"dropped_spans_total"`
}

// Snapshot renders the retained traces, newest first.
func (t *Tracer) Snapshot() TracesResponse {
	t.mu.Lock()
	ring := make([]*completedTrace, len(t.ring))
	copy(ring, t.ring)
	t.mu.Unlock()
	resp := TracesResponse{
		Traces:          make([]TraceJSON, 0, len(ring)),
		Spans:           t.spansTotal.Load(),
		CompletedTraces: t.tracesTotal.Load(),
		DroppedSpans:    t.droppedTotal.Load(),
	}
	for i := len(ring) - 1; i >= 0; i-- {
		ct := ring[i]
		ct.td.mu.Lock()
		spans := make([]SpanRecord, len(ct.td.spans))
		copy(spans, ct.td.spans)
		dropped := ct.td.dropped
		ct.td.mu.Unlock()
		resp.Traces = append(resp.Traces, TraceJSON{
			TraceID:        ct.td.traceID.String(),
			Root:           ct.root.Name,
			Remote:         ct.td.remote,
			EndedAt:        ct.endedAt,
			DurationMicros: ct.root.DurationMicros,
			DroppedSpans:   dropped,
			Spans:          spans,
		})
	}
	return resp
}

// Handler serves the completed-trace ring as JSON — GET /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.Snapshot())
	})
}

// Inject writes the span's context into h as a W3C traceparent header,
// so the receiving process can continue the trace. No-op for a nil
// span.
func Inject(span *Span, h http.Header) {
	if span == nil {
		return
	}
	h.Set(TraceParentHeader, fmt.Sprintf("00-%s-%s-01", span.TraceID(), span.SpanID()))
}

// Extract parses a W3C traceparent header ("00-<32 hex trace
// id>-<16 hex span id>-<2 hex flags>"). ok is false for a missing or
// malformed header, or all-zero ids (invalid per the spec).
func Extract(h http.Header) (traceID TraceID, parent SpanID, ok bool) {
	v := h.Get(TraceParentHeader)
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes.
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if v[0] != '0' || v[1] != '0' {
		// Only version 00 is understood; a future version may change the
		// field layout, so refuse rather than misparse.
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(traceID[:], []byte(v[3:35])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(v[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(v[53:55])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if traceID.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return traceID, parent, true
}

// ID generation: a process-global counter whitened with a random
// per-process key. crypto/rand per span would dominate the span's own
// cost on the ingest hot path; a seeded SplitMix64 stream is
// collision-free within a process and the 64-bit random offset makes
// cross-process collisions vanishingly unlikely.
var (
	idKey uint64
	idCtr atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; ids stay unique in-process through the
		// counter either way.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	idKey = binary.LittleEndian.Uint64(b[:])
}

// next64 returns the next whitened 64-bit id word (SplitMix64).
func next64() uint64 {
	z := idKey + idCtr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // all-zero ids are invalid per W3C trace-context
	}
	return z
}

func newTraceID() TraceID {
	var t TraceID
	binary.LittleEndian.PutUint64(t[:8], next64())
	binary.LittleEndian.PutUint64(t[8:], next64())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], next64())
	return s
}
