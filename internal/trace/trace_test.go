package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRootAndChildSpans pins the core span lifecycle: a root with two
// children lands in the ring as one trace with three records, parents
// wired, attrs and events retained.
func TestRootAndChildSpans(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartRoot(context.Background(), "http.request")
	root.SetAttr("path", "/report")

	cctx, child := StartSpan(ctx, "wal.append")
	child.SetAttr("bytes", 128)
	child.AddEvent("fsync queued")
	_, grand := StartSpan(cctx, "wal.fsync")
	grand.End()
	child.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(snap.Traces))
	}
	got := snap.Traces[0]
	if got.TraceID != root.TraceID().String() {
		t.Fatalf("trace id %s, want %s", got.TraceID, root.TraceID())
	}
	if got.Root != "http.request" || got.Remote {
		t.Fatalf("root %q remote %v, want http.request local", got.Root, got.Remote)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(got.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["wal.append"].ParentID != root.SpanID().String() {
		t.Errorf("wal.append parent %s, want root %s", byName["wal.append"].ParentID, root.SpanID())
	}
	if byName["wal.fsync"].ParentID != byName["wal.append"].SpanID {
		t.Errorf("wal.fsync parent %s, want wal.append %s", byName["wal.fsync"].ParentID, byName["wal.append"].SpanID)
	}
	if byName["http.request"].ParentID != "" {
		t.Errorf("root parent %q, want none", byName["http.request"].ParentID)
	}
	if a := byName["wal.append"].Attrs; len(a) != 1 || a[0].Key != "bytes" || a[0].Value != "128" {
		t.Errorf("attrs %+v, want bytes=128", a)
	}
	if e := byName["wal.append"].Events; len(e) != 1 || e[0].Message != "fsync queued" {
		t.Errorf("events %+v, want one fsync queued", e)
	}
	st := tr.Stats()
	if st.Spans != 3 || st.Traces != 1 || st.DroppedSpans != 0 || st.Retained != 1 {
		t.Errorf("stats %+v, want 3 spans / 1 trace / 0 dropped / 1 retained", st)
	}
}

// TestNilSpanSafety pins the no-op contract: every method on a nil
// span (the path when tracing isn't wired) is safe, and StartSpan on a
// bare context returns nil.
func TestNilSpanSafety(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "anything")
	if s != nil {
		t.Fatal("StartSpan on a bare context minted a span")
	}
	s.SetAttr("k", "v")
	s.AddEvent("e")
	s.End()
	s.Discard()
	if !s.TraceID().IsZero() || !s.SpanID().IsZero() {
		t.Error("nil span has non-zero ids")
	}
	Inject(s, http.Header{})
	if FromContext(ctx) != nil {
		t.Error("bare context carries a span")
	}
}

// TestTraceparentRoundTrip pins W3C propagation: Inject writes a
// header Extract parses back to the same ids, and StartRemoteRoot
// continues the trace id while recording the remote parent.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{})
	_, root := tr.StartRoot(context.Background(), "cluster.pull")
	h := http.Header{}
	Inject(root, h)

	wantHeader := fmt.Sprintf("00-%s-%s-01", root.TraceID(), root.SpanID())
	if got := h.Get(TraceParentHeader); got != wantHeader {
		t.Fatalf("traceparent %q, want %q", got, wantHeader)
	}
	tid, parent, ok := Extract(h)
	if !ok || tid != root.TraceID() || parent != root.SpanID() {
		t.Fatalf("Extract = (%s, %s, %v), want (%s, %s, true)", tid, parent, ok, root.TraceID(), root.SpanID())
	}

	remote := New(Options{})
	_, rroot := remote.StartRemoteRoot(context.Background(), "http.request", tid, parent)
	if rroot.TraceID() != root.TraceID() {
		t.Fatalf("remote root trace %s, want continued %s", rroot.TraceID(), root.TraceID())
	}
	rroot.End()
	root.End()
	snap := remote.Snapshot()
	if len(snap.Traces) != 1 || !snap.Traces[0].Remote {
		t.Fatalf("remote snapshot %+v, want one remote trace", snap.Traces)
	}
	if snap.Traces[0].Spans[0].ParentID != parent.String() {
		t.Errorf("remote root parent %s, want %s", snap.Traces[0].Spans[0].ParentID, parent)
	}
}

// TestExtractRejectsMalformed pins the refusal cases: wrong length,
// wrong version, non-hex, and all-zero ids.
func TestExtractRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-abc-def-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // future version
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex trace id
		"00-0af7651916cd43dd8448eb211c80319c-zzad6b7169203331-01", // non-hex span id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // non-hex flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00x0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331x01", // wrong separators
	}
	for _, v := range cases {
		h := http.Header{}
		if v != "" {
			h.Set(TraceParentHeader, v)
		}
		if _, _, ok := Extract(h); ok {
			t.Errorf("Extract accepted %q", v)
		}
	}
	h := http.Header{}
	h.Set(TraceParentHeader, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if _, _, ok := Extract(h); !ok {
		t.Error("Extract rejected a valid header")
	}
}

// TestRingBoundAndEviction pins the bounded ring: capacity+k roots
// retain only capacity traces, newest first.
func TestRingBoundAndEviction(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 7; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("op-%d", i))
		root.End()
	}
	snap := tr.Snapshot()
	if len(snap.Traces) != 4 {
		t.Fatalf("retained %d, want 4", len(snap.Traces))
	}
	for i, want := range []string{"op-6", "op-5", "op-4", "op-3"} {
		if snap.Traces[i].Root != want {
			t.Errorf("trace[%d] root %q, want %q (newest first)", i, snap.Traces[i].Root, want)
		}
	}
	if snap.CompletedTraces != 7 {
		t.Errorf("traces_total %d, want 7", snap.CompletedTraces)
	}
}

// TestSpanCapCountsDropped pins the per-trace span cap: spans beyond
// maxSpansPerTrace are counted as dropped, not retained.
func TestSpanCapCountsDropped(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartRoot(context.Background(), "flood")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := StartSpan(ctx, "child")
		s.End()
	}
	root.End()
	snap := tr.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(snap.Traces))
	}
	got := snap.Traces[0]
	if len(got.Spans) != maxSpansPerTrace {
		t.Errorf("%d spans retained, want cap %d", len(got.Spans), maxSpansPerTrace)
	}
	// 10 children over the cap, plus the root itself arriving after the
	// cap filled.
	if got.DroppedSpans != 11 || snap.DroppedSpans != 11 {
		t.Errorf("dropped %d (total %d), want 11", got.DroppedSpans, snap.DroppedSpans)
	}
}

// TestDiscardSkipsRing pins Discard: an abandoned root records
// nothing, so periodic no-ops don't flood the ring.
func TestDiscardSkipsRing(t *testing.T) {
	tr := New(Options{})
	_, root := tr.StartRoot(context.Background(), "window.advance")
	root.Discard()
	root.End() // must stay a no-op after Discard
	if snap := tr.Snapshot(); len(snap.Traces) != 0 || snap.CompletedTraces != 0 {
		t.Fatalf("discarded root still recorded: %+v", snap)
	}
}

// TestSlowTraceLog pins the slow-trace hook: only roots at or above
// the threshold are reported.
func TestSlowTraceLog(t *testing.T) {
	var (
		mu    sync.Mutex
		lines []string
	)
	tr := New(Options{
		SlowThreshold: 20 * time.Millisecond,
		SlowLog: func(traceID, rootName string, d time.Duration) {
			mu.Lock()
			lines = append(lines, rootName)
			mu.Unlock()
		},
	})
	_, fast := tr.StartRoot(context.Background(), "fast")
	fast.End()
	_, slow := tr.StartRoot(context.Background(), "slow")
	time.Sleep(25 * time.Millisecond)
	slow.End()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || lines[0] != "slow" {
		t.Fatalf("slow log %v, want [slow]", lines)
	}
}

// TestHandlerJSON pins the /debug/traces contract: GET returns the
// ring as JSON, other methods 405 with Allow.
func TestHandlerJSON(t *testing.T) {
	tr := New(Options{})
	_, root := tr.StartRoot(context.Background(), "op")
	root.End()
	ts := httptest.NewServer(tr.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var body TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 || body.Traces[0].Root != "op" || body.Spans != 1 {
		t.Fatalf("body %+v, want one op trace", body)
	}

	post, err := http.Post(ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed || post.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("POST: status %d Allow %q, want 405 GET", post.StatusCode, post.Header.Get("Allow"))
	}
}

// TestConcurrentSpansAndSnapshot races span creation, ending, and ring
// snapshots; run under -race this pins the locking discipline.
func TestConcurrentSpansAndSnapshot(t *testing.T) {
	tr := New(Options{Capacity: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRoot(context.Background(), fmt.Sprintf("g%d", g))
				_, child := StartSpan(ctx, "child")
				child.End()
				root.End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Traces != 400 || st.Spans != 800 {
		t.Fatalf("stats %+v, want 400 traces / 800 spans", st)
	}
}

// TestIDUniqueness sanity-checks the SplitMix64 stream: no collisions
// across a large draw.
func TestIDUniqueness(t *testing.T) {
	seen := make(map[TraceID]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := newTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}
