package chowliu

import (
	"math"
	"testing"

	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

// chainRecords samples a Markov chain over d bits: X0 fair, each
// successive bit copies its predecessor with flip probability flip.
func chainRecords(n, d int, flip float64, seed uint64) []uint64 {
	r := rng.New(seed)
	recs := make([]uint64, n)
	for i := range recs {
		var rec uint64
		prev := r.Bernoulli(0.5)
		if prev {
			rec |= 1
		}
		for j := 1; j < d; j++ {
			cur := prev
			if r.Bernoulli(flip) {
				cur = !cur
			}
			if cur {
				rec |= 1 << uint(j)
			}
			prev = cur
		}
		recs[i] = rec
	}
	return recs
}

type exactEstimator struct{ records []uint64 }

func (e exactEstimator) Estimate(beta uint64) (*marginal.Table, error) {
	return marginal.FromRecords(e.records, beta)
}

func TestFitRecoversChain(t *testing.T) {
	// The true structure is a path 0-1-2-3-4; Chow-Liu on exact
	// marginals must recover exactly the chain edges.
	records := chainRecords(80000, 5, 0.15, 1)
	tree, err := FitFromEstimator(exactEstimator{records}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Edges) != 4 {
		t.Fatalf("tree has %d edges, want 4", len(tree.Edges))
	}
	for j := 0; j < 4; j++ {
		if !tree.HasEdge(j, j+1) {
			t.Errorf("missing chain edge (%d,%d); edges=%v", j, j+1, tree.Edges)
		}
	}
}

func TestFitIsMaximal(t *testing.T) {
	// The Chow-Liu tree's total MI must beat an arbitrary alternative
	// spanning tree (here: the star rooted at 0).
	records := chainRecords(50000, 6, 0.2, 2)
	est := exactEstimator{records}
	mi, err := PairMI(est, 6)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(mi)
	if err != nil {
		t.Fatal(err)
	}
	var starMI float64
	for j := 1; j < 6; j++ {
		starMI += mi[0][j]
	}
	if tree.TotalMI < starMI-1e-12 {
		t.Errorf("Chow-Liu total MI %v below star tree %v", tree.TotalMI, starMI)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([][]float64{{0}}); err == nil {
		t.Error("d=1 should error")
	}
	if _, err := Fit([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix should error")
	}
	nanMI := [][]float64{{0, math.NaN()}, {math.NaN(), 0}}
	if _, err := Fit(nanMI); err == nil {
		t.Error("NaN MI should error")
	}
	if _, err := PairMI(exactEstimator{nil}, 1); err == nil {
		t.Error("PairMI with d=1 should error")
	}
}

func TestFitDeterministicTieBreak(t *testing.T) {
	// All-equal weights: any spanning tree is optimal; the fit must be
	// deterministic across calls.
	mi := [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	}
	a, err := Fit(mi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(mi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("tie-broken fit is not deterministic")
		}
	}
}

func TestBuildModelAndCPTs(t *testing.T) {
	records := chainRecords(60000, 4, 0.1, 3)
	est := exactEstimator{records}
	tree, err := FitFromEstimator(est, 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := BuildModel(tree, est, 0)
	if err != nil {
		t.Fatal(err)
	}
	if model.Parent[0] != -1 {
		t.Error("root should have no parent")
	}
	if len(model.Order) != 4 || model.Order[0] != 0 {
		t.Errorf("order = %v, want root first", model.Order)
	}
	// Chain with flip 0.1: P(child=1 | parent=1) ~ 0.9.
	for v := 1; v < 4; v++ {
		if model.Parent[v] < 0 {
			continue
		}
		if math.Abs(model.CPT[v][1]-0.9) > 0.05 {
			t.Errorf("CPT[%d][1] = %v, want ~0.9", v, model.CPT[v][1])
		}
		if math.Abs(model.CPT[v][0]-0.1) > 0.05 {
			t.Errorf("CPT[%d][0] = %v, want ~0.1", v, model.CPT[v][0])
		}
	}
	if _, err := BuildModel(tree, est, 99); err == nil {
		t.Error("bad root should error")
	}
}

func TestModelSamplingMatchesSource(t *testing.T) {
	// Sampling from the fitted model should reproduce the source's
	// pairwise marginals closely.
	records := chainRecords(60000, 4, 0.15, 4)
	est := exactEstimator{records}
	tree, err := FitFromEstimator(est, 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := BuildModel(tree, est, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	sampled := make([]uint64, 60000)
	for i := range sampled {
		sampled[i] = model.Sample(r)
	}
	for j := 0; j < 3; j++ {
		beta := uint64(0b11) << uint(j)
		want, _ := marginal.FromRecords(records, beta)
		got, _ := marginal.FromRecords(sampled, beta)
		tv, _ := want.TVDistance(got)
		if tv > 0.02 {
			t.Errorf("sampled pair (%d,%d) TV = %v, want < 0.02", j, j+1, tv)
		}
	}
}

func TestLogLikelihoodPrefersTrueModel(t *testing.T) {
	// The model fitted on chain data must score chain data higher than
	// uniform random data.
	records := chainRecords(30000, 5, 0.1, 6)
	est := exactEstimator{records}
	tree, err := FitFromEstimator(est, 5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := BuildModel(tree, est, 0)
	if err != nil {
		t.Fatal(err)
	}
	llChain, err := model.LogLikelihood(records)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	random := make([]uint64, 30000)
	for i := range random {
		random[i] = r.Uint64n(32)
	}
	llRandom, err := model.LogLikelihood(random)
	if err != nil {
		t.Fatal(err)
	}
	if llChain <= llRandom {
		t.Errorf("chain LL %v should exceed random LL %v", llChain, llRandom)
	}
	if _, err := model.LogLikelihood(nil); err == nil {
		t.Error("no records should error")
	}
}

func TestFitOnTaxi(t *testing.T) {
	// The taxi generator's strongly-dependent pairs should appear as
	// tree edges.
	ds := dataset.NewTaxi(80000, 8)
	tree, err := FitFromEstimator(exactEstimator{ds.Records}, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{
		{dataset.TaxiNightPick, dataset.TaxiNightDrop},
		{dataset.TaxiMPick, dataset.TaxiMDrop},
		{dataset.TaxiCC, dataset.TaxiTip},
	}
	for _, p := range pairs {
		if !tree.HasEdge(p[0], p[1]) {
			t.Errorf("expected edge (%s,%s) in tree %v",
				ds.Names[p[0]], ds.Names[p[1]], tree.Edges)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if !uf.union(0, 1) {
		t.Error("first union should succeed")
	}
	if uf.union(1, 0) {
		t.Error("repeated union should fail")
	}
	if !uf.union(2, 3) || !uf.union(0, 2) {
		t.Error("unions should succeed")
	}
	if uf.find(3) != uf.find(1) {
		t.Error("3 and 1 should be connected")
	}
	if uf.find(4) == uf.find(0) {
		t.Error("4 should be isolated")
	}
}
