// Package chowliu implements Chow-Liu dependency trees (Section 6.2):
// the optimal first-order tree approximation of a joint distribution is
// the maximum-weight spanning tree of the complete graph whose edge
// weights are pairwise mutual informations. Trees can be fitted from
// exact or LDP-estimated marginals, scored by total mutual information,
// converted to conditional probability tables, sampled, and used for
// likelihood computations.
package chowliu

import (
	"fmt"
	"math"
	"sort"

	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/stats"
)

// Edge is an undirected tree edge between two attributes with its mutual
// information weight.
type Edge struct {
	A, B int
	MI   float64
}

// Tree is a fitted Chow-Liu dependency tree over d binary attributes.
type Tree struct {
	// D is the number of attributes.
	D int
	// Edges holds the d-1 tree edges in the order Kruskal selected them.
	Edges []Edge
	// TotalMI is the sum of edge mutual informations — the quantity the
	// paper compares across privacy mechanisms in Figure 8.
	TotalMI float64
}

// unionFind is a standard disjoint-set structure for Kruskal's algorithm.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// PairMI computes the mutual-information weight matrix from a marginal
// estimator (exact dataset marginals or an LDP aggregator): entry (i,j)
// is I(X_i; X_j) of the estimated 2-way marginal.
func PairMI(est marginal.Estimator, d int) ([][]float64, error) {
	if d < 2 {
		return nil, fmt.Errorf("chowliu: need at least 2 attributes, got %d", d)
	}
	mi := make([][]float64, d)
	for i := range mi {
		mi[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			beta := uint64(1)<<uint(i) | uint64(1)<<uint(j)
			tab, err := est.Estimate(beta)
			if err != nil {
				return nil, fmt.Errorf("chowliu: estimating pair (%d,%d): %w", i, j, err)
			}
			v, err := stats.MutualInformation(tab)
			if err != nil {
				return nil, err
			}
			mi[i][j] = v
			mi[j][i] = v
		}
	}
	return mi, nil
}

// Fit computes the maximum-weight spanning tree of the mutual-information
// matrix with Kruskal's algorithm. Ties are broken deterministically by
// (A, B) order so fits are reproducible.
func Fit(mi [][]float64) (*Tree, error) {
	d := len(mi)
	if d < 2 {
		return nil, fmt.Errorf("chowliu: need at least 2 attributes, got %d", d)
	}
	var edges []Edge
	for i := 0; i < d; i++ {
		if len(mi[i]) != d {
			return nil, fmt.Errorf("chowliu: MI matrix is ragged")
		}
		for j := i + 1; j < d; j++ {
			w := mi[i][j]
			if math.IsNaN(w) {
				return nil, fmt.Errorf("chowliu: MI(%d,%d) is NaN", i, j)
			}
			edges = append(edges, Edge{A: i, B: j, MI: w})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].MI != edges[b].MI {
			return edges[a].MI > edges[b].MI
		}
		if edges[a].A != edges[b].A {
			return edges[a].A < edges[b].A
		}
		return edges[a].B < edges[b].B
	})
	uf := newUnionFind(d)
	tree := &Tree{D: d}
	for _, e := range edges {
		if uf.union(e.A, e.B) {
			tree.Edges = append(tree.Edges, e)
			tree.TotalMI += e.MI
			if len(tree.Edges) == d-1 {
				break
			}
		}
	}
	if len(tree.Edges) != d-1 {
		return nil, fmt.Errorf("chowliu: spanning tree incomplete (%d of %d edges)", len(tree.Edges), d-1)
	}
	return tree, nil
}

// FitFromEstimator combines PairMI and Fit.
func FitFromEstimator(est marginal.Estimator, d int) (*Tree, error) {
	mi, err := PairMI(est, d)
	if err != nil {
		return nil, err
	}
	return Fit(mi)
}

// HasEdge reports whether the undirected edge (a, b) is in the tree.
func (t *Tree) HasEdge(a, b int) bool {
	for _, e := range t.Edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			return true
		}
	}
	return false
}

// Adjacency returns the neighbour lists of the tree.
func (t *Tree) Adjacency() [][]int {
	adj := make([][]int, t.D)
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	return adj
}

// Model is a Chow-Liu tree with fitted conditional probability tables,
// defining a full joint distribution that can be sampled and scored.
type Model struct {
	Tree *Tree
	// Root is the attribute the CPT orientation starts from.
	Root int
	// Parent[v] is v's parent in the rooted tree (-1 for the root).
	Parent []int
	// RootDist is P(X_root = 1).
	RootDist float64
	// CPT[v][pv] is P(X_v = 1 | X_parent(v) = pv) for non-root v.
	CPT [][2]float64
	// Order is a topological order (root first) for sampling.
	Order []int
}

// BuildModel orients the tree at root and fills conditional probability
// tables from the estimator's 1- and 2-way marginals. Estimated tables
// are simplex-projected, so the CPTs are valid probabilities even when
// the underlying estimates have noise-induced negative cells.
func BuildModel(tree *Tree, est marginal.Estimator, root int) (*Model, error) {
	if root < 0 || root >= tree.D {
		return nil, fmt.Errorf("chowliu: root %d out of range", root)
	}
	adj := tree.Adjacency()
	m := &Model{
		Tree:   tree,
		Root:   root,
		Parent: make([]int, tree.D),
		CPT:    make([][2]float64, tree.D),
	}
	for i := range m.Parent {
		m.Parent[i] = -1
	}
	// BFS orientation.
	visited := make([]bool, tree.D)
	queue := []int{root}
	visited[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		m.Order = append(m.Order, v)
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				m.Parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	if len(m.Order) != tree.D {
		return nil, fmt.Errorf("chowliu: tree is disconnected")
	}
	// Root marginal.
	rootTab, err := est.Estimate(1 << uint(root))
	if err != nil {
		return nil, err
	}
	rootTab = rootTab.Clone().ProjectToSimplex()
	m.RootDist = rootTab.Cells[1]
	// Child CPTs from pairwise marginals.
	for _, v := range m.Order {
		p := m.Parent[v]
		if p < 0 {
			continue
		}
		beta := uint64(1)<<uint(v) | uint64(1)<<uint(p)
		tab, err := est.Estimate(beta)
		if err != nil {
			return nil, err
		}
		tab = tab.Clone().ProjectToSimplex()
		// Compact cell layout: bit order follows attribute index order.
		vFirst := v < p
		joint := func(vv, pv int) float64 {
			var cell int
			if vFirst {
				cell = vv | pv<<1
			} else {
				cell = pv | vv<<1
			}
			return tab.Cells[cell]
		}
		for pv := 0; pv < 2; pv++ {
			den := joint(0, pv) + joint(1, pv)
			if den <= 0 {
				m.CPT[v][pv] = 0.5 // no evidence: neutral
				continue
			}
			m.CPT[v][pv] = joint(1, pv) / den
		}
	}
	return m, nil
}

// Sample draws one record from the fitted model.
func (m *Model) Sample(r *rng.RNG) uint64 {
	var rec uint64
	for _, v := range m.Order {
		var p float64
		if m.Parent[v] < 0 {
			p = m.RootDist
		} else {
			pv := 0
			if rec&(1<<uint(m.Parent[v])) != 0 {
				pv = 1
			}
			p = m.CPT[v][pv]
		}
		if r.Bernoulli(p) {
			rec |= 1 << uint(v)
		}
	}
	return rec
}

// LogLikelihood returns the mean per-record log2-likelihood of records
// under the model. Zero-probability events are floored at 1e-12 to keep
// the result finite.
func (m *Model) LogLikelihood(records []uint64) (float64, error) {
	if len(records) == 0 {
		return 0, fmt.Errorf("chowliu: no records to score")
	}
	const floor = 1e-12
	var total float64
	for _, rec := range records {
		for _, v := range m.Order {
			var p float64
			if m.Parent[v] < 0 {
				p = m.RootDist
			} else {
				pv := 0
				if rec&(1<<uint(m.Parent[v])) != 0 {
					pv = 1
				}
				p = m.CPT[v][pv]
			}
			if rec&(1<<uint(v)) == 0 {
				p = 1 - p
			}
			if p < floor {
				p = floor
			}
			total += math.Log2(p)
		}
	}
	return total / float64(len(records)), nil
}
