package core

import (
	"bytes"
	"testing"
)

// TestExportShardsReassembles pins the delta-exchange foundation: the
// per-shard exports of a sharded aggregator, decoded and merged on the
// far side, are bit-identical to a full Snapshot, for every protocol.
func TestExportShardsReassembles(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, shardedTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			sh := NewSharded(p, 5)
			reps := perturbReports(t, p, 600, 7)
			for i := 0; i < len(reps); i += 60 {
				if err := sh.ConsumeBatch(reps[i:min(i+60, len(reps))]); err != nil {
					t.Fatal(err)
				}
			}
			exps, vers, err := sh.ExportShards()
			if err != nil {
				t.Fatal(err)
			}
			if len(vers) != sh.Shards() {
				t.Fatalf("version vector over %d shards, want %d", len(vers), sh.Shards())
			}
			// Reassemble into an empty sharded aggregator of the same
			// protocol, exactly like a coordinator folding components.
			blobs := make([][]byte, 0, len(exps))
			total := 0
			for _, e := range exps {
				if e.N == 0 || len(e.State) == 0 {
					t.Fatalf("shard %d exported empty (n=%d, %d bytes)", e.Index, e.N, len(e.State))
				}
				if vers[e.Index] != e.Version {
					t.Fatalf("shard %d: export version %d but vector says %d", e.Index, e.Version, vers[e.Index])
				}
				blobs = append(blobs, e.State)
				total += e.N
			}
			if total != len(reps) {
				t.Fatalf("exports hold %d reports, want %d", total, len(reps))
			}
			other := NewSharded(p, 3)
			got, err := other.SnapshotWith(blobs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sh.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			wantBlob, err := want.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			gotBlob, err := got.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBlob, wantBlob) {
				t.Fatal("reassembled exports differ from a full snapshot")
			}
		})
	}
}

// TestExportShardsVersionVector pins the delta contract: an untouched
// shard's vector entry is stable across exports, and a mutation moves
// exactly the touched shard's entry.
func TestExportShardsVersionVector(t *testing.T) {
	p, err := New(InpHT, shardedTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(p, 4)
	reps := perturbReports(t, p, 40, 9)
	for i := 0; i < 4; i++ {
		if err := sh.ConsumeBatch(reps[i*8 : (i+1)*8]); err != nil {
			t.Fatal(err)
		}
	}
	_, before, err := sh.ExportShards()
	if err != nil {
		t.Fatal(err)
	}
	// One batch touches exactly one (round-robin) shard.
	if err := sh.ConsumeBatch(reps[32:40]); err != nil {
		t.Fatal(err)
	}
	_, after, err := sh.ExportShards()
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	if moved != 1 {
		t.Fatalf("one batch moved %d shard versions, want 1 (before %v, after %v)", moved, before, after)
	}
	// Empty shards are omitted from exports but present in the vector.
	empty := NewSharded(p, 6)
	exps, vers, err := empty.ExportShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 0 || len(vers) != 6 {
		t.Fatalf("empty aggregator exported %d shards with a %d-entry vector", len(exps), len(vers))
	}
}
