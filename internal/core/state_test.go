package core

import (
	"bytes"
	"testing"

	"ldpmarginals/internal/rng"
)

// TestStateRoundTripBitIdentical pins the state codec contract for all
// six protocols: marshal a populated aggregator, restore the blob into
// a fresh aggregator, and require (a) the re-marshaled blob to be
// byte-identical (canonical encoding) and (b) every answerable
// marginal to reconstruct bit-identically from the restored state.
func TestStateRoundTripBitIdentical(t *testing.T) {
	cfg := shardedTestConfig()
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agg := p.NewAggregator()
			if err := agg.ConsumeBatch(perturbReports(t, p, 2000, 7)); err != nil {
				t.Fatal(err)
			}
			blob, err := agg.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored := p.NewAggregator()
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			if restored.N() != agg.N() {
				t.Fatalf("restored N = %d, want %d", restored.N(), agg.N())
			}
			again, err := restored.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, again) {
				t.Fatalf("re-marshaled state differs: %d vs %d bytes", len(again), len(blob))
			}
			assertTablesBitIdentical(t, restored, agg, cfg)
		})
	}
}

// TestStateEmptyRoundTrip pins that an empty aggregator's state
// restores to an empty aggregator for every protocol.
func TestStateEmptyRoundTrip(t *testing.T) {
	cfg := shardedTestConfig()
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := p.NewAggregator().MarshalState()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		restored := p.NewAggregator()
		if err := restored.UnmarshalState(blob); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if restored.N() != 0 {
			t.Fatalf("%v: restored empty state has N = %d", kind, restored.N())
		}
	}
}

// TestShardedStateRoundTrip pins that a sharded aggregator's state is
// the merged sequential state: restoring it into another sharded
// aggregator (with a different shard count) reproduces the blob and
// the estimates bit-identically.
func TestShardedStateRoundTrip(t *testing.T) {
	cfg := shardedTestConfig()
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sh := NewSharded(p, 4)
			reps := perturbReports(t, p, 1500, 11)
			for lo := 0; lo < len(reps); lo += 100 {
				hi := min(lo+100, len(reps))
				if err := sh.ConsumeBatch(reps[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := sh.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored := NewSharded(p, 3)
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			if restored.N() != sh.N() {
				t.Fatalf("restored N = %d, want %d", restored.N(), sh.N())
			}
			again, err := restored.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, again) {
				t.Fatal("re-marshaled sharded state differs")
			}
			assertTablesBitIdentical(t, restored, sh, cfg)

			// Restoring resets previous contents, not merges into them.
			dirty := NewSharded(p, 2)
			if err := dirty.ConsumeBatch(perturbReports(t, p, 50, 13)); err != nil {
				t.Fatal(err)
			}
			if err := dirty.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			if dirty.N() != sh.N() {
				t.Fatalf("restore over dirty state: N = %d, want %d", dirty.N(), sh.N())
			}
		})
	}
}

// TestUnmarshalStateRejectsWrongProtocol pins that a blob restores only
// into its own protocol: every cross-protocol pairing must fail and
// leave the receiver unchanged.
func TestUnmarshalStateRejectsWrongProtocol(t *testing.T) {
	cfg := shardedTestConfig()
	blobs := make(map[Kind][]byte)
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		agg := p.NewAggregator()
		if err := agg.ConsumeBatch(perturbReports(t, p, 200, 3)); err != nil {
			t.Fatal(err)
		}
		if blobs[kind], err = agg.MarshalState(); err != nil {
			t.Fatal(err)
		}
	}
	for _, dst := range AllKinds() {
		p, err := New(dst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range AllKinds() {
			if src == dst {
				continue
			}
			agg := p.NewAggregator()
			if err := agg.UnmarshalState(blobs[src]); err == nil {
				t.Fatalf("%v state restored into %v aggregator", src, dst)
			}
			if agg.N() != 0 {
				t.Fatalf("failed restore left %v aggregator with N = %d", dst, agg.N())
			}
		}
	}
}

// TestUnmarshalStateRejectsWrongGeometry pins that a blob from a
// different deployment configuration (here a larger d) is rejected.
func TestUnmarshalStateRejectsWrongGeometry(t *testing.T) {
	small := shardedTestConfig()
	big := small
	big.D = small.D + 2
	for _, kind := range AllKinds() {
		ps, err := New(kind, small)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := New(kind, big)
		if err != nil {
			t.Fatal(err)
		}
		agg := pb.NewAggregator()
		if err := agg.ConsumeBatch(perturbReports(t, pb, 100, 5)); err != nil {
			t.Fatal(err)
		}
		blob, err := agg.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.NewAggregator().UnmarshalState(blob); err == nil {
			t.Fatalf("%v: d=%d state restored into d=%d aggregator", kind, big.D, small.D)
		}
	}
}

// FuzzUnmarshalState feeds arbitrary blobs to every protocol's decoder:
// it must restore cleanly or reject with an error — never panic — and a
// successful restore must re-marshal to the exact input (no two byte
// strings decode to the same accepted state).
func FuzzUnmarshalState(f *testing.F) {
	cfg := Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	protos := make([]Protocol, 0, len(AllKinds()))
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			f.Fatal(err)
		}
		protos = append(protos, p)
		agg := p.NewAggregator()
		client := p.NewClient()
		// A small deterministic population seeds the corpus with valid
		// blobs of every kind.
		r := rng.New(uint64(len(protos)))
		for i := 0; i < 64; i++ {
			rep, err := client.Perturb(uint64(i%64), r)
			if err != nil {
				f.Fatal(err)
			}
			if err := agg.Consume(rep); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := agg.MarshalState()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		// Truncated, bit-flipped, and oversized-length variants.
		f.Add(blob[:len(blob)/2])
		flipped := append([]byte(nil), blob...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
		f.Add(append([]byte{blob[0], blob[1]}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range protos {
			agg := p.NewAggregator()
			if err := agg.UnmarshalState(data); err != nil {
				continue
			}
			blob, err := agg.MarshalState()
			if err != nil {
				t.Fatalf("%s: accepted state does not re-marshal: %v", p.Name(), err)
			}
			if !bytes.Equal(blob, data) {
				t.Fatalf("%s: accepted state re-marshals to %d bytes, input was %d", p.Name(), len(blob), len(data))
			}
		}
	})
}
