package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ldpmarginals/internal/rng"
)

// deltaTestConfig keeps the delta tests fast while exercising every
// protocol's counter layout.
func deltaTestConfig() Config {
	return Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
}

func deltaReports(tb testing.TB, p Protocol, n int, seed uint64) []Report {
	tb.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%(1<<uint(p.Config().D)), r)
		if err != nil {
			tb.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// TestSnapshotDeltaMatchesSnapshot interleaves randomized ingestion with
// delta folds across all six protocols and checks, after every fold,
// that the arena's cumulative state is byte-identical to a fresh full
// Snapshot — the central exactness claim of the delta path.
func TestSnapshotDeltaMatchesSnapshot(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, deltaTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			sh := NewSharded(p, 4)
			arena := sh.NewSnapshotArena()
			if arena == nil {
				t.Fatalf("%s: no snapshot arena for a core protocol", kind)
			}
			reps := deltaReports(t, p, 4000, uint64(kind)+11)
			r := rand.New(rand.NewSource(int64(kind) + 5))
			lo := 0
			folds := 0
			for lo < len(reps) {
				hi := lo + 1 + r.Intn(400)
				if hi > len(reps) {
					hi = len(reps)
				}
				if err := sh.ConsumeBatch(reps[lo:hi]); err != nil {
					t.Fatal(err)
				}
				lo = hi
				if r.Intn(3) == 0 || lo == len(reps) {
					touched, err := sh.SnapshotDeltaInto(arena)
					if err != nil {
						t.Fatal(err)
					}
					folds++
					if folds > 1 && touched > 4 {
						t.Fatalf("fold touched %d shards of 4", touched)
					}
					wantAgg, err := sh.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					want, err := wantAgg.MarshalState()
					if err != nil {
						t.Fatal(err)
					}
					got, err := arena.State().MarshalState()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: after fold %d the arena state diverges from Snapshot", kind, folds)
					}
					if arena.State().N() != sh.N() {
						t.Fatalf("arena N %d, want %d", arena.State().N(), sh.N())
					}
				}
			}
			// A fold with no ingestion in between touches nothing.
			touched, err := sh.SnapshotDeltaInto(arena)
			if err != nil {
				t.Fatal(err)
			}
			if touched != 0 {
				t.Fatalf("idle fold touched %d shards", touched)
			}
			// Reset forces a cold recapture that still matches Snapshot.
			arena.Reset()
			if arena.Primed() {
				t.Fatal("arena primed after Reset")
			}
			if touched, err = sh.SnapshotDeltaInto(arena); err != nil || touched != 4 {
				t.Fatalf("cold recapture touched %d (%v), want 4", touched, err)
			}
			wantAgg, err := sh.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			want, _ := wantAgg.MarshalState()
			got, _ := arena.State().MarshalState()
			if !bytes.Equal(got, want) {
				t.Fatal("cold recapture diverges from Snapshot")
			}
		})
	}
}

// TestSnapshotDeltaSeesRestore pins the per-shard version bump of
// UnmarshalState: a state restore replaces every shard, so the next
// fold must re-fold all of them (a stale "unchanged" skip would keep
// serving the pre-restore contribution).
func TestSnapshotDeltaSeesRestore(t *testing.T) {
	p, err := New(InpHT, deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(p, 4)
	arena := sh.NewSnapshotArena()
	if err := sh.ConsumeBatch(deltaReports(t, p, 500, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SnapshotDeltaInto(arena); err != nil {
		t.Fatal(err)
	}
	// Build a different state and restore it wholesale.
	other := NewSharded(p, 2)
	if err := other.ConsumeBatch(deltaReports(t, p, 900, 4)); err != nil {
		t.Fatal(err)
	}
	blob, err := other.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SnapshotDeltaInto(arena); err != nil {
		t.Fatal(err)
	}
	got, _ := arena.State().MarshalState()
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := snap.MarshalState()
	if !bytes.Equal(got, want) {
		t.Fatal("arena did not track the restored state")
	}
	if arena.State().N() != 900 {
		t.Fatalf("arena N %d after restore, want 900", arena.State().N())
	}
}

// noDeltaAgg wraps a protocol aggregator, hiding the Unmerge and
// CopyStateFrom methods.
type noDeltaAgg struct{ Aggregator }

// TestNoArenaWithoutUnmerge: a factory whose aggregators cannot be
// unmerged gets no arena (callers fall back to full snapshots).
func TestNoArenaWithoutUnmerge(t *testing.T) {
	p, err := New(InpHT, deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShardedFrom(func() Aggregator { return noDeltaAgg{p.NewAggregator()} }, 2)
	if arena := sh.NewSnapshotArena(); arena != nil {
		t.Fatal("got an arena over an unmergeable aggregator")
	}
	if sh.SupportsDeltaSnapshots() {
		t.Fatal("SupportsDeltaSnapshots over an unmergeable aggregator")
	}
}

// TestArenaOwnership: folding someone else's arena is rejected.
func TestArenaOwnership(t *testing.T) {
	p, err := New(InpHT, deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewSharded(p, 2), NewSharded(p, 2)
	arena := a.NewSnapshotArena()
	if _, err := b.SnapshotDeltaInto(arena); err == nil {
		t.Fatal("foreign arena accepted")
	}
}

// TestUnmergeInvertsMerge checks the exact-inverse contract on every
// protocol: merge then unmerge restores the original counters bit for
// bit.
func TestUnmergeInvertsMerge(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, deltaTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			base := p.NewAggregator()
			if err := base.ConsumeBatch(deltaReports(t, p, 700, 21)); err != nil {
				t.Fatal(err)
			}
			extra := p.NewAggregator()
			if err := extra.ConsumeBatch(deltaReports(t, p, 300, 22)); err != nil {
				t.Fatal(err)
			}
			want, err := base.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := base.Merge(extra); err != nil {
				t.Fatal(err)
			}
			if err := UnmergeAggregators(base, extra); err != nil {
				t.Fatal(err)
			}
			got, err := base.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: merge+unmerge is not the identity", kind)
			}
		})
	}
}

// TestUnmergeRejectsNeverMerged pins the underflow guard on every
// protocol: unmerging state that was never merged into the receiver is
// an error (not a silent wrap to negative counters) and leaves the
// receiver bit-identical to before the call.
func TestUnmergeRejectsNeverMerged(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, deltaTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			// The foreign state concentrates one report's contribution 399
			// times on a single counter, so no 400-report receiver built
			// from spread-out reports can contain it: the guard must fire
			// on a counter even though n alone would pass.
			one := deltaReports(t, p, 1, 51)
			repeated := make([]Report, 399)
			for i := range repeated {
				repeated[i] = one[0]
			}
			foreign := p.NewAggregator()
			if err := foreign.ConsumeBatch(repeated); err != nil {
				t.Fatal(err)
			}
			// An empty receiver cannot contain any contribution.
			empty := p.NewAggregator()
			emptyBefore, err := empty.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := UnmergeAggregators(empty, foreign); err == nil {
				t.Fatal("unmerging from an empty aggregator succeeded")
			}
			if got, _ := empty.MarshalState(); !bytes.Equal(got, emptyBefore) {
				t.Fatal("failed unmerge mutated the empty receiver")
			}
			// A populated receiver holding different reports: the foreign
			// counters exceed the receiver's somewhere (fixed seeds make
			// this deterministic), so the guard must fire before any
			// counter is touched.
			base := p.NewAggregator()
			if err := base.ConsumeBatch(deltaReports(t, p, 400, 52)); err != nil {
				t.Fatal(err)
			}
			before, err := base.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := UnmergeAggregators(base, foreign); err == nil {
				t.Fatalf("%s: unmerging never-merged state succeeded", kind)
			}
			if got, _ := base.MarshalState(); !bytes.Equal(got, before) {
				t.Fatalf("%s: failed unmerge mutated the receiver", kind)
			}
			// The receiver is still fully functional: the legitimate
			// merge+unmerge round trip remains the exact identity.
			if err := base.Merge(foreign); err != nil {
				t.Fatal(err)
			}
			if err := UnmergeAggregators(base, foreign); err != nil {
				t.Fatalf("%s: legitimate unmerge after rejection: %v", kind, err)
			}
			if got, _ := base.MarshalState(); !bytes.Equal(got, before) {
				t.Fatalf("%s: merge+unmerge after rejection is not the identity", kind)
			}
		})
	}
}

// TestSnapshotDeltaRaceClean hammers concurrent batch writers against a
// folding reader; the assertions are in the race detector plus a final
// exactness check once the writers quiesce.
func TestSnapshotDeltaRaceClean(t *testing.T) {
	p, err := New(MargHT, deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(p, 4)
	arena := sh.NewSnapshotArena()
	reps := deltaReports(t, p, 8000, 9)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * 2000; lo < (w+1)*2000; lo += 250 {
				if err := sh.ConsumeBatch(reps[lo : lo+250]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := sh.SnapshotDeltaInto(arena); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}
	if _, err := sh.SnapshotDeltaInto(arena); err != nil {
		t.Fatal(err)
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := snap.MarshalState()
	got, _ := arena.State().MarshalState()
	if !bytes.Equal(got, want) {
		t.Fatal("arena state diverged after concurrent ingestion")
	}
}

// TestLinearReconstructionMatchesEstimate compares the input-view
// protocols' single-transform k-way reconstruction against the exact
// per-table scan: within 1e-11 total variation per table (the two
// differ only in floating-point summation order).
func TestLinearReconstructionMatchesEstimate(t *testing.T) {
	for _, kind := range []Kind{InpRR, InpPS} {
		for _, d := range []int{6, 10} {
			cfg := Config{D: d, K: 3, Epsilon: 1.1, OptimizedPRR: true}
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agg := p.NewAggregator()
			if err := agg.ConsumeBatch(deltaReports(t, p, 3000, uint64(d))); err != nil {
				t.Fatal(err)
			}
			arena, err := NewKWayArena(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := AllKWayTablesInto(agg, arena, true); err != nil {
				t.Fatal(err)
			}
			exact, err := AllKWayTables(agg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range exact {
				var tv float64
				for c := range exact[i].Table.Cells {
					tv += math.Abs(exact[i].Table.Cells[c] - arena.Tables[i].Cells[c])
				}
				tv /= 2
				if tv > 1e-11 {
					t.Fatalf("%s d=%d: table %b fast-vs-exact TV %g", kind, d, exact[i].Beta, tv)
				}
				if arena.Users[i] != exact[i].Users {
					t.Fatalf("%s d=%d: table %b users %d vs %d", kind, d, exact[i].Beta, arena.Users[i], exact[i].Users)
				}
			}
		}
	}
}

// TestKWayArenaMatchesAllKWayTables pins the arena reconstruction
// (fast disabled) bit-identical to AllKWayTables for every protocol.
func TestKWayArenaMatchesAllKWayTables(t *testing.T) {
	cfg := deltaTestConfig()
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agg := p.NewAggregator()
			if err := agg.ConsumeBatch(deltaReports(t, p, 2500, uint64(kind)+31)); err != nil {
				t.Fatal(err)
			}
			arena, err := NewKWayArena(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := AllKWayTablesInto(agg, arena, false); err != nil {
				t.Fatal(err)
			}
			want, err := AllKWayTables(agg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if arena.Users[i] != want[i].Users {
					t.Fatalf("%s: table %b users %d vs %d", kind, want[i].Beta, arena.Users[i], want[i].Users)
				}
				for c := range want[i].Table.Cells {
					if math.Float64bits(arena.Tables[i].Cells[c]) != math.Float64bits(want[i].Table.Cells[c]) {
						t.Fatalf("%s: table %b cell %d differs", kind, want[i].Beta, c)
					}
				}
			}
		})
	}
}
