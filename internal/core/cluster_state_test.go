package core

import (
	"bytes"
	"testing"

	"ldpmarginals/internal/rng"
)

// TestCrossProcessMergeBitIdentity extends the merge-vs-sequential
// equivalence to the cluster exchange path for the full protocol set:
// a stream split across two foreign aggregators, exported through the
// canonical state codec and folded back in with SnapshotWith, must
// produce state byte-identical to one sequential aggregator consuming
// the whole stream. This is the core guarantee the edge/coordinator
// tier rests on.
func TestCrossProcessMergeBitIdentity(t *testing.T) {
	cfg := Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			client := p.NewClient()
			r := rng.New(uint64(kind) + 1)
			const n = 300
			reps := make([]Report, n)
			for i := range reps {
				if reps[i], err = client.Perturb(uint64(i%64), r); err != nil {
					t.Fatal(err)
				}
			}

			// Sequential reference over the whole stream.
			seq := p.NewAggregator()
			for _, rep := range reps {
				if err := seq.Consume(rep); err != nil {
					t.Fatal(err)
				}
			}
			want, err := seq.MarshalState()
			if err != nil {
				t.Fatal(err)
			}

			// Two "edge processes" split the stream round-robin and
			// export canonical state blobs.
			var edges [2]Aggregator
			for i := range edges {
				edges[i] = p.NewAggregator()
			}
			for i, rep := range reps {
				if err := edges[i%2].Consume(rep); err != nil {
					t.Fatal(err)
				}
			}
			var blobs [][]byte
			for _, e := range edges {
				blob, err := e.MarshalState()
				if err != nil {
					t.Fatal(err)
				}
				blobs = append(blobs, blob)
			}

			// A "coordinator" with empty local shards folds the foreign
			// blobs in; the merged state must be byte-identical.
			coord := NewSharded(p, 4)
			merged, err := coord.SnapshotWith(blobs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := merged.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: merged foreign state differs from sequential (%d vs %d bytes)", kind, len(got), len(want))
			}
			if merged.N() != n {
				t.Fatalf("merged N=%d, want %d", merged.N(), n)
			}

			// Local shards and foreign blobs compose: reports ingested
			// locally plus one foreign blob equal the sequential whole.
			mixed := NewSharded(p, 4)
			for i, rep := range reps {
				if i%2 == 0 {
					if err := mixed.Consume(rep); err != nil {
						t.Fatal(err)
					}
				}
			}
			merged2, err := mixed.SnapshotWith(blobs[1:])
			if err != nil {
				t.Fatal(err)
			}
			got2, err := merged2.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got2, want) {
				t.Fatalf("%v: local+foreign state differs from sequential", kind)
			}

			// A structurally corrupt foreign blob is rejected, not
			// merged: wrong kind byte, and a truncated tail. (Bit flips
			// inside counter values are the state-exchange frame CRC's
			// job, not the codec's.)
			bad := append([]byte(nil), blobs[0]...)
			bad[0] ^= 0xFF
			if _, err := coord.SnapshotWith([][]byte{bad}); err == nil {
				t.Error("foreign blob with a foreign kind byte was merged")
			}
			if _, err := coord.SnapshotWith([][]byte{blobs[0][:len(blobs[0])-1]}); err == nil {
				t.Error("truncated foreign blob was merged")
			}
		})
	}
}

// TestShardedVersionAdvances pins the mutation counter the cluster tier
// labels state exports with: every mutating operation advances it, and
// reads don't.
func TestShardedVersionAdvances(t *testing.T) {
	cfg := Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	p, err := New(InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(9)
	s := NewSharded(p, 2)
	if s.Version() != 0 {
		t.Fatalf("fresh version = %d", s.Version())
	}
	rep, err := client.Perturb(1, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Consume(rep); err != nil {
		t.Fatal(err)
	}
	v1 := s.Version()
	if v1 == 0 {
		t.Fatal("Consume did not advance the version")
	}
	if err := s.ConsumeBatch([]Report{rep, rep}); err != nil {
		t.Fatal(err)
	}
	v2 := s.Version()
	if v2 == v1 {
		t.Fatal("ConsumeBatch did not advance the version")
	}
	// Reads leave it alone.
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MarshalState(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != v2 {
		t.Fatal("read-only operations moved the version")
	}
	// Merge and UnmarshalState advance it.
	other := p.NewAggregator()
	if err := other.Consume(rep); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	v3 := s.Version()
	if v3 == v2 {
		t.Fatal("Merge did not advance the version")
	}
	blob, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if s.Version() == v3 {
		t.Fatal("UnmarshalState did not advance the version")
	}
}
