package core

import (
	"math"
	"strings"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

const ln3 = 1.0986122886681098

// skewedRecords builds a deterministic synthetic population over d
// attributes with non-trivial correlations, for accuracy checks.
func skewedRecords(n, d int, seed uint64) []uint64 {
	r := rng.New(seed)
	recs := make([]uint64, n)
	for i := range recs {
		var rec uint64
		base := r.Bernoulli(0.6)
		for j := 0; j < d; j++ {
			p := 0.2 + 0.1*float64(j%3)
			if base {
				p += 0.3
			}
			if r.Bernoulli(p) {
				rec |= 1 << uint(j)
			}
		}
		recs[i] = rec
	}
	return recs
}

func TestConfigValidate(t *testing.T) {
	good := Config{D: 8, K: 2, Epsilon: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{D: 0, K: 1, Epsilon: 1},
		{D: 50, K: 1, Epsilon: 1},
		{D: 4, K: 0, Epsilon: 1},
		{D: 4, K: 5, Epsilon: 1},
		{D: 4, K: 2, Epsilon: 0},
		{D: 4, K: 2, Epsilon: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		InpRR: "InpRR", InpPS: "InpPS", InpHT: "InpHT",
		MargRR: "MargRR", MargPS: "MargPS", MargHT: "MargHT",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
	if len(AllKinds()) != 6 {
		t.Error("AllKinds should list 6 protocols")
	}
}

func TestNewFactory(t *testing.T) {
	cfg := Config{D: 6, K: 2, Epsilon: ln3}
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatalf("New(%v): %v", kind, err)
		}
		if p.Name() != kind.String() {
			t.Errorf("protocol name %q != kind %q", p.Name(), kind)
		}
		if p.Config() != cfg {
			t.Errorf("%v config round trip failed", kind)
		}
	}
	if _, err := New(Kind(42), cfg); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestCommunicationBitsTable2(t *testing.T) {
	// Table 2 with d=8, k=2: InpRR 2^d, InpPS d, InpHT d+1,
	// MargRR d+2^k, MargPS d+k, MargHT d+k+1.
	cfg := Config{D: 8, K: 2, Epsilon: ln3}
	want := map[Kind]int{
		InpRR: 256, InpPS: 8, InpHT: 9, MargRR: 12, MargPS: 10, MargHT: 11,
	}
	for kind, bits := range want {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.CommunicationBits(); got != bits {
			t.Errorf("%v communication = %d bits, want %d", kind, got, bits)
		}
	}
}

func TestInputProtocolDimensionLimits(t *testing.T) {
	cfg := Config{D: 24, K: 2, Epsilon: 1}
	if _, err := NewInpRR(cfg); err == nil {
		t.Error("InpRR should refuse d=24")
	}
	if _, err := NewInpPS(cfg); err == nil {
		t.Error("InpPS should refuse d=24")
	}
	// The scalable protocols must accept it.
	for _, kind := range []Kind{InpHT, MargRR, MargPS, MargHT} {
		if _, err := New(kind, cfg); err != nil {
			t.Errorf("%v should accept d=24: %v", kind, err)
		}
	}
}

// runAccuracy runs the protocol over records and returns the mean TV over
// all marginals of size exactly qk.
func runAccuracy(t *testing.T, kind Kind, cfg Config, records []uint64, qk int, seed uint64) float64 {
	t.Helper()
	p, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, records, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := marginal.MeanTV(res.Agg, records, bitops.MasksWithExactlyK(cfg.D, qk))
	if err != nil {
		t.Fatal(err)
	}
	return tv
}

func TestAllProtocolsRecoverMarginals(t *testing.T) {
	// With a large population and generous epsilon every protocol must
	// reconstruct 2-way marginals accurately on a small domain.
	records := skewedRecords(150000, 5, 1)
	cfg := Config{D: 5, K: 2, Epsilon: 3, OptimizedPRR: true}
	budgets := map[Kind]float64{
		InpRR:  0.05,
		InpPS:  0.08,
		InpHT:  0.05,
		MargRR: 0.05,
		MargPS: 0.05,
		MargHT: 0.06,
	}
	for kind, budget := range budgets {
		tv := runAccuracy(t, kind, cfg, records, 2, 7)
		if tv > budget {
			t.Errorf("%v mean TV = %v, want < %v", kind, tv, budget)
		}
	}
}

func TestSubMarginalQueries(t *testing.T) {
	// Protocols collected for k=2 must answer 1-way marginals too.
	records := skewedRecords(120000, 6, 2)
	cfg := Config{D: 6, K: 2, Epsilon: 3, OptimizedPRR: true}
	for _, kind := range AllKinds() {
		tv := runAccuracy(t, kind, cfg, records, 1, 11)
		if tv > 0.08 {
			t.Errorf("%v 1-way TV = %v, want < 0.08", kind, tv)
		}
	}
}

func TestBetaValidation(t *testing.T) {
	records := skewedRecords(1000, 5, 3)
	cfg := Config{D: 5, K: 2, Epsilon: 1}
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(p, records, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Agg.Estimate(0); err == nil {
			t.Errorf("%v accepted empty beta", kind)
		}
		if _, err := res.Agg.Estimate(1 << 6); err == nil {
			t.Errorf("%v accepted out-of-domain beta", kind)
		}
		if _, err := res.Agg.Estimate(0b111); err == nil {
			t.Errorf("%v accepted |beta| > k", kind)
		}
		if _, err := res.Agg.Estimate(0b11); err != nil {
			t.Errorf("%v rejected valid beta: %v", kind, err)
		}
	}
}

func TestEmptyAggregatorErrors(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.NewAggregator().Estimate(0b11); err == nil {
			t.Errorf("%v empty aggregator should refuse Estimate", kind)
		}
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	// Consuming reports through two shards and merging must equal one
	// aggregator consuming everything.
	cfg := Config{D: 5, K: 2, Epsilon: 2}
	records := skewedRecords(4000, 5, 4)
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		client := p.NewClient()
		r := rng.New(99)
		reports := make([]Report, len(records))
		for i, rec := range records {
			rep, err := client.Perturb(rec, r)
			if err != nil {
				t.Fatal(err)
			}
			reports[i] = rep
		}
		whole := p.NewAggregator()
		left := p.NewAggregator()
		right := p.NewAggregator()
		for i, rep := range reports {
			if err := whole.Consume(rep); err != nil {
				t.Fatal(err)
			}
			var err error
			if i%2 == 0 {
				err = left.Consume(rep)
			} else {
				err = right.Consume(rep)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if left.N() != whole.N() {
			t.Fatalf("%v merge N = %d, want %d", kind, left.N(), whole.N())
		}
		a, err := whole.Estimate(0b11)
		if err != nil {
			t.Fatal(err)
		}
		b, err := left.Estimate(0b11)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := a.TVDistance(b)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 1e-12 {
			t.Errorf("%v merged estimate differs from sequential (TV=%v)", kind, tv)
		}
	}
}

func TestMergeRejectsWrongType(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	var aggs []Aggregator
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		aggs = append(aggs, p.NewAggregator())
	}
	for i, a := range aggs {
		other := aggs[(i+1)%len(aggs)]
		if err := a.Merge(other); err == nil {
			t.Errorf("aggregator %d merged a different protocol's aggregator", i)
		}
	}
}

func TestClientRejectsOutOfDomainRecord(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	r := rng.New(5)
	for _, kind := range AllKinds() {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.NewClient().Perturb(1<<5, r); err == nil {
			t.Errorf("%v accepted out-of-domain record", kind)
		}
	}
}

func TestConsumeRejectsMalformedReports(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	cases := map[Kind]Report{
		InpRR:  {Bits: []uint64{1, 2, 3}},         // wrong word count
		InpPS:  {Index: 1 << 10},                  // out-of-range cell
		InpHT:  {Index: 0b1111, Sign: 1},          // |alpha| > k
		MargRR: {Beta: 0b1111, Bits: []uint64{0}}, // not a k-way marginal
		MargPS: {Beta: 0b0011, Index: 99},         // cell out of range
		MargHT: {Beta: 0b0011, Index: 0, Sign: 1}, // constant coefficient
	}
	for kind, rep := range cases {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.NewAggregator().Consume(rep); err == nil {
			t.Errorf("%v accepted malformed report %+v", kind, rep)
		}
	}
	// Bad signs for the HT protocols.
	pht, _ := New(InpHT, cfg)
	if err := pht.NewAggregator().Consume(Report{Index: 0b0011, Sign: 0}); err == nil {
		t.Error("InpHT accepted sign 0")
	}
	mht, _ := New(MargHT, cfg)
	if err := mht.NewAggregator().Consume(Report{Beta: 0b0011, Index: 1, Sign: 3}); err == nil {
		t.Error("MargHT accepted sign 3")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	p, err := New(InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, nil, 1, 2); err == nil {
		t.Error("empty records should error")
	}
	if _, err := Run(p, []uint64{1 << 10}, 1, 2); err == nil {
		t.Error("out-of-domain record should surface from the runner")
	}
}

func TestRunWorkerCounts(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 2}
	records := skewedRecords(100, 4, 6)
	p, err := New(MargPS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 200} {
		res, err := Run(p, records, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Agg.N() != len(records) {
			t.Errorf("workers=%d consumed %d reports", workers, res.Agg.N())
		}
	}
}

func TestRunTotalBits(t *testing.T) {
	cfg := Config{D: 8, K: 2, Epsilon: 1}
	records := skewedRecords(500, 8, 8)
	p, err := New(InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, records, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(9 * 500); res.TotalBits != want {
		t.Errorf("TotalBits = %d, want %d", res.TotalBits, want)
	}
}

func TestInpRRBatchMatchesPerReportStatistically(t *testing.T) {
	// The binomial fast path and the per-report path must estimate the
	// same marginal to within sampling noise.
	records := skewedRecords(40000, 4, 9)
	cfg := Config{D: 4, K: 2, Epsilon: 2, OptimizedPRR: true}
	p, err := NewInpRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-report path.
	slow := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(10)
	for _, rec := range records {
		rep, err := client.Perturb(rec, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := slow.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Batch path.
	fast := p.NewAggregator()
	if err := fast.(BatchSimulator).SimulateBatch(records, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	exact, err := marginal.FromRecords(records, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	for name, agg := range map[string]Aggregator{"slow": slow, "fast": fast} {
		got, err := agg.Estimate(0b11)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := got.TVDistance(exact)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 0.05 {
			t.Errorf("%s path TV = %v, want < 0.05", name, tv)
		}
	}
}

func TestUnbiasednessAcrossRepeats(t *testing.T) {
	// Averaging estimates across independent runs must converge to the
	// truth faster than a single run (the estimators are unbiased).
	if testing.Short() {
		t.Skip("statistical repeat test")
	}
	records := skewedRecords(20000, 4, 12)
	exact, err := marginal.FromRecords(records, 0b0101)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{D: 4, K: 2, Epsilon: 1, OptimizedPRR: true}
	for _, kind := range []Kind{InpHT, MargPS, InpPS} {
		p, err := New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		avg, err := marginal.New(0b0101)
		if err != nil {
			t.Fatal(err)
		}
		const repeats = 20
		for rep := 0; rep < repeats; rep++ {
			res, err := Run(p, records, uint64(1000+rep), 4)
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Agg.Estimate(0b0101)
			if err != nil {
				t.Fatal(err)
			}
			if err := avg.Add(got); err != nil {
				t.Fatal(err)
			}
		}
		avg.Scale(1.0 / repeats)
		tv, err := avg.TVDistance(exact)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 0.03 {
			t.Errorf("%v mean-of-%d-runs TV = %v, want < 0.03 (bias?)", kind, repeats, tv)
		}
	}
}

func TestMargIndexSupersets(t *testing.T) {
	mi := newMargIndex(5, 2)
	supers := mi.supersetsOf(0b00001)
	if len(supers) != 4 {
		t.Fatalf("attribute 0 should appear in 4 of the C(5,2) marginals, got %d", len(supers))
	}
	for _, pos := range supers {
		if !bitops.IsSubset(0b00001, mi.masks[pos]) {
			t.Errorf("mask %b is not a superset", mi.masks[pos])
		}
	}
}

func TestUniformFallbackWhenMarginalUnsampled(t *testing.T) {
	// A marginal-based aggregator with a single report can still answer
	// for every marginal: unsampled ones fall back to uniform.
	cfg := Config{D: 6, K: 2, Epsilon: 1}
	p, err := New(MargPS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	client := p.NewClient()
	rep, err := client.Perturb(0b101010, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Consume(rep); err != nil {
		t.Fatal(err)
	}
	for _, beta := range bitops.MasksWithExactlyK(6, 2) {
		tab, err := agg.Estimate(beta)
		if err != nil {
			t.Fatalf("beta=%b: %v", beta, err)
		}
		if beta != rep.Beta {
			for _, c := range tab.Cells {
				if math.Abs(c-0.25) > 1e-12 {
					t.Fatalf("unsampled marginal %b should be uniform, got %v", beta, tab.Cells)
				}
			}
		}
	}
}

func TestInpHTScaledCoefficientZeroAlpha(t *testing.T) {
	cfg := Config{D: 4, K: 2, Epsilon: 1}
	p, err := NewInpHT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator().(*inpHTAgg)
	if agg.ScaledCoefficient(0) != 1 {
		t.Error("alpha=0 must be exactly 1")
	}
	if agg.ScaledCoefficient(0b11) != 0 {
		t.Error("unsampled coefficient must be 0")
	}
}
