package core

import (
	"fmt"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/hadamard"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// inpPS is the InpPS protocol (Section 4.2): each user releases a single
// (noisy) cell index of their one-hot input through preferential sampling
// (generalized randomized response over all 2^d cells). Communication is
// only d bits, but accuracy degrades with 2^d — for larger d the
// probability of reporting the true index becomes so small that reports
// are nearly uniform, matching Theorem 4.4's bound.
type inpPS struct {
	cfg  Config
	grr  *mech.GRR
	size uint64
}

// NewInpPS constructs the InpPS protocol. d is limited to
// MaxInputAttributes because the aggregator materializes 2^d counters.
func NewInpPS(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.D > MaxInputAttributes {
		return nil, fmt.Errorf("core: InpPS with d=%d would materialize 2^%d cells (limit d=%d)",
			cfg.D, cfg.D, MaxInputAttributes)
	}
	grr, err := mech.NewGRR(cfg.Epsilon, 1<<uint(cfg.D))
	if err != nil {
		return nil, err
	}
	return &inpPS{cfg: cfg, grr: grr, size: 1 << uint(cfg.D)}, nil
}

func (p *inpPS) Name() string           { return "InpPS" }
func (p *inpPS) Config() Config         { return p.cfg }
func (p *inpPS) CommunicationBits() int { return p.cfg.D }

func (p *inpPS) NewClient() Client { return &inpPSClient{p: p} }

func (p *inpPS) NewAggregator() Aggregator {
	return &inpPSAgg{p: p, counts: make([]uint64, p.size)}
}

type inpPSClient struct{ p *inpPS }

// Perturb reports the true cell with probability p_s and a uniformly
// random other cell otherwise (Fact 3.1).
func (c *inpPSClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= c.p.size {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	return Report{Index: c.p.grr.Perturb(record, r)}, nil
}

type inpPSAgg struct {
	p      *inpPS
	counts []uint64
	n      int
}

func (a *inpPSAgg) N() int { return a.n }

func (a *inpPSAgg) Consume(rep Report) error {
	if rep.Index >= a.p.size {
		return fmt.Errorf("core: InpPS report index %d out of range", rep.Index)
	}
	a.counts[rep.Index]++
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *inpPSAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *inpPSAgg) Merge(other Aggregator) error {
	o, ok := other.(*inpPSAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into InpPS aggregator", other)
	}
	for i, c := range o.counts {
		a.counts[i] += c
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots.
func (a *inpPSAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*inpPSAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from InpPS aggregator", other)
	}
	// Validate before mutating: unmerging state that was never merged
	// would wrap the unsigned counters; reject it and leave the
	// receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging InpPS state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i, c := range o.counts {
		if c > a.counts[i] {
			return fmt.Errorf("core: unmerging InpPS state never merged here: cell %d would underflow (%d > %d)", i, c, a.counts[i])
		}
	}
	for i, c := range o.counts {
		a.counts[i] -= c
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers.
func (a *inpPSAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*inpPSAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into InpPS aggregator", other)
	}
	copy(a.counts, o.counts)
	a.n = o.n
	return nil
}

// reconstructKWayLinear derives every k-way table from ONE full-domain
// Walsh-Hadamard transform of the per-cell report counts instead of a
// 2^d scan per table — see inpRRAgg.reconstructKWayLinear for the
// identity. The GRR unbiasing is affine with D = m-1:
//
//	est_c = (D*S_c/n + 2^{d-k}*(Ps-1)) / (D*Ps + Ps - 1).
func (a *inpPSAgg) reconstructKWayLinear(masks []uint64, tables []*marginal.Table, users []int) error {
	if a.n == 0 {
		return fmt.Errorf("core: InpPS aggregator has no reports")
	}
	w := hadamard.GetVec(int(a.p.size))
	defer hadamard.PutVec(w)
	for j, c := range a.counts {
		w[j] = float64(c)
	}
	if err := hadamard.WHT(w); err != nil {
		return err
	}
	invN := 1 / float64(a.n)
	dd := float64(a.p.grr.M - 1)
	ps := a.p.grr.Ps
	denom := dd*ps + ps - 1
	errs := make([]error, len(masks))
	parallelFor(len(masks), func(i int) {
		cells := tables[i].Cells
		for c := range cells {
			cells[c] = w[bitops.Expand(uint64(c), masks[i])]
		}
		if err := hadamard.InverseWHT(cells); err != nil {
			errs[i] = err
			return
		}
		group := float64(int(a.p.size) / len(cells))
		for c := range cells {
			cells[c] = (dd*cells[c]*invN + group*(ps-1)) / denom
		}
		users[i] = a.n
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Estimate unbiases the reported-index frequencies into the reconstructed
// distribution and aggregates the target marginal (Theorem 4.4's
// estimator, Section 4.1). The 2^d-cell scan parallelizes across
// goroutines for large d (see scatterCells).
func (a *inpPSAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBetaWithin(beta, a.p.cfg); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: InpPS aggregator has no reports")
	}
	out, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(a.n)
	scatterCells(out, beta, int(a.p.size), func(j int) float64 {
		return a.p.grr.UnbiasFrequency(float64(a.counts[j]) * inv)
	})
	return out, nil
}
