package core

import (
	"fmt"
	"sync"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// maskCache memoizes bitops.MasksWithExactlyK per (d, k): the collection
// C is identical for every build of a deployment's lifetime, so there is
// no reason to re-enumerate (and re-allocate) it once per epoch. Cached
// slices are shared — callers must treat them as read-only.
var maskCache sync.Map // uint64(d)<<8 | uint64(k) -> []uint64

// KWayMasks returns the memoized mask list of the C(d,k) k-way
// collection, in the numeric order of bitops.MasksWithExactlyK. The
// returned slice is shared and must not be mutated.
func KWayMasks(d, k int) []uint64 {
	key := uint64(d)<<8 | uint64(k)
	if m, ok := maskCache.Load(key); ok {
		return m.([]uint64)
	}
	m, _ := maskCache.LoadOrStore(key, bitops.MasksWithExactlyK(d, k))
	return m.([]uint64)
}

// KWayTable is one reconstructed k-way collection table together with the
// evidence behind it.
type KWayTable struct {
	// Beta is the attribute mask of the table.
	Beta uint64
	// Table is the reconstructed (unbiased, not yet post-processed)
	// marginal estimate.
	Table *marginal.Table
	// Users is the number of reports behind this table: the per-marginal
	// sample count for the marginal-view protocols (each user contributes
	// to exactly one table), and the total report count for the
	// input-view protocols (every user contributes to every table).
	Users int
}

// kWayReconstructor is the fast path of AllKWayTables: the marginal-view
// aggregators reconstruct the table at position pos of the collection C
// directly from that marginal's own accumulator, exposing its realized
// per-marginal user count.
type kWayReconstructor interface {
	kWay(pos int) (*marginal.Table, int, error)
}

// kWayIntoReconstructor is the allocation-free variant: reconstruct the
// table at position pos into the caller's table (dst.Beta already set to
// the position's mask), returning the per-marginal user count. The
// marginal-view aggregators implement it with arithmetic identical to
// kWay, so an arena build is bit-identical to an allocating one.
type kWayIntoReconstructor interface {
	kWayInto(pos int, dst *marginal.Table) (int, error)
}

// estimateIntoReconstructor is the allocation-free variant for
// aggregators whose every report informs every table (InpHT):
// reconstruct the marginal over dst.Beta into dst. Arithmetic identical
// to Estimate.
type estimateIntoReconstructor interface {
	estimateInto(dst *marginal.Table) error
}

// linearKWayReconstructor is the delta-refresh fast path of the
// input-view protocols: derive every k-way table's unnormalized cell
// sums from ONE full-domain Walsh-Hadamard transform of the counter
// vector (O(d 2^d) total) instead of one 2^d-cell scan per table
// (O(C(d,k) 2^d)), then apply the protocol's affine unbiasing per cell.
// The result agrees with the per-table scan up to floating-point
// summation order (within ~1e-12 TV at the supported sizes); the exact
// per-table scan remains the cold-build (bit-pinned) path.
type linearKWayReconstructor interface {
	reconstructKWayLinear(masks []uint64, tables []*marginal.Table, users []int) error
}

// KWayArena is a reusable reconstruction workspace: one pre-allocated
// table per mask of the C(d,k) collection plus the per-table evidence.
// An epoch refresh reconstructs into the same arena every time, so the
// steady-state build allocates nothing. Not safe for concurrent use.
type KWayArena struct {
	cfg Config
	// Masks is the memoized collection mask list (read-only, shared).
	Masks []uint64
	// Tables holds one table per mask, reused across builds.
	Tables []*marginal.Table
	// Users holds the per-table evidence of the latest build.
	Users []int
}

// NewKWayArena allocates the reconstruction arena of a deployment.
func NewKWayArena(cfg Config) (*KWayArena, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	masks := KWayMasks(cfg.D, cfg.K)
	a := &KWayArena{
		cfg:    cfg,
		Masks:  masks,
		Tables: make([]*marginal.Table, len(masks)),
		Users:  make([]int, len(masks)),
	}
	cells := make([]float64, len(masks)<<uint(cfg.K))
	tabs := make([]marginal.Table, len(masks))
	for i, m := range masks {
		tabs[i] = marginal.Table{Beta: m, Cells: cells[i<<uint(cfg.K) : (i+1)<<uint(cfg.K)]}
		a.Tables[i] = &tabs[i]
	}
	return a, nil
}

// AllKWayTablesInto reconstructs every k-way marginal of the collection
// from one aggregator snapshot into the arena — the allocation-free
// counterpart of AllKWayTables. With fast set, input-view aggregators
// take the single-transform linear path (see linearKWayReconstructor);
// otherwise, and for every other protocol, the arithmetic is identical
// to AllKWayTables, so the arena's tables are bit-identical to a cold
// reconstruction of the same state.
func AllKWayTablesInto(agg Aggregator, a *KWayArena, fast bool) error {
	if agg.N() == 0 {
		for i, t := range a.Tables {
			uniform(t.Cells)
			a.Users[i] = 0
		}
		return nil
	}
	if fast {
		if lr, ok := agg.(linearKWayReconstructor); ok {
			return lr.reconstructKWayLinear(a.Masks, a.Tables, a.Users)
		}
	}
	errs := make([]error, len(a.Masks))
	switch rec := agg.(type) {
	case kWayIntoReconstructor:
		parallelFor(len(a.Masks), func(i int) {
			users, err := rec.kWayInto(i, a.Tables[i])
			if err != nil {
				errs[i] = err
				return
			}
			a.Users[i] = users
		})
	case estimateIntoReconstructor:
		n := agg.N()
		parallelFor(len(a.Masks), func(i int) {
			if err := rec.estimateInto(a.Tables[i]); err != nil {
				errs[i] = err
				return
			}
			a.Users[i] = n
		})
	default:
		// Generic fallback (out-of-package aggregators): allocate via
		// Estimate and copy into the arena.
		n := agg.N()
		parallelFor(len(a.Masks), func(i int) {
			t, err := agg.Estimate(a.Masks[i])
			if err != nil {
				errs[i] = err
				return
			}
			copy(a.Tables[i].Cells, t.Cells)
			a.Users[i] = n
		})
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: reconstructing %b: %w", a.Masks[i], err)
		}
	}
	return nil
}

// uniform fills cells with the uniform distribution, matching
// marginal.Uniform's values.
func uniform(cells []float64) {
	u := 1 / float64(len(cells))
	for i := range cells {
		cells[i] = u
	}
}

// AllKWayTables reconstructs every C(d,k) k-way marginal of the
// collection from one aggregator snapshot, fanning the per-table
// reconstructions out across goroutines. Tables are returned in the
// numeric mask order of bitops.MasksWithExactlyK, and each table is
// deterministic for a given aggregator state, so two calls over equal
// snapshots return bit-identical results regardless of GOMAXPROCS.
//
// The aggregator must not be written concurrently (use a private
// snapshot); an empty aggregator yields uniform tables with Users = 0.
func AllKWayTables(agg Aggregator, cfg Config) ([]KWayTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	masks := KWayMasks(cfg.D, cfg.K)
	out := make([]KWayTable, len(masks))
	if agg.N() == 0 {
		for i, m := range masks {
			t, err := marginal.Uniform(m)
			if err != nil {
				return nil, err
			}
			out[i] = KWayTable{Beta: m, Table: t}
		}
		return out, nil
	}
	errs := make([]error, len(masks))
	if rec, ok := agg.(kWayReconstructor); ok {
		parallelFor(len(masks), func(i int) {
			t, users, err := rec.kWay(i)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = KWayTable{Beta: masks[i], Table: t, Users: users}
		})
	} else {
		n := agg.N()
		parallelFor(len(masks), func(i int) {
			t, err := agg.Estimate(masks[i])
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = KWayTable{Beta: masks[i], Table: t, Users: n}
		})
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: reconstructing %b: %w", masks[i], err)
		}
	}
	return out, nil
}
