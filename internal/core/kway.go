package core

import (
	"fmt"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// KWayTable is one reconstructed k-way collection table together with the
// evidence behind it.
type KWayTable struct {
	// Beta is the attribute mask of the table.
	Beta uint64
	// Table is the reconstructed (unbiased, not yet post-processed)
	// marginal estimate.
	Table *marginal.Table
	// Users is the number of reports behind this table: the per-marginal
	// sample count for the marginal-view protocols (each user contributes
	// to exactly one table), and the total report count for the
	// input-view protocols (every user contributes to every table).
	Users int
}

// kWayReconstructor is the fast path of AllKWayTables: the marginal-view
// aggregators reconstruct the table at position pos of the collection C
// directly from that marginal's own accumulator, exposing its realized
// per-marginal user count.
type kWayReconstructor interface {
	kWay(pos int) (*marginal.Table, int, error)
}

// AllKWayTables reconstructs every C(d,k) k-way marginal of the
// collection from one aggregator snapshot, fanning the per-table
// reconstructions out across goroutines. Tables are returned in the
// numeric mask order of bitops.MasksWithExactlyK, and each table is
// deterministic for a given aggregator state, so two calls over equal
// snapshots return bit-identical results regardless of GOMAXPROCS.
//
// The aggregator must not be written concurrently (use a private
// snapshot); an empty aggregator yields uniform tables with Users = 0.
func AllKWayTables(agg Aggregator, cfg Config) ([]KWayTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	masks := bitops.MasksWithExactlyK(cfg.D, cfg.K)
	out := make([]KWayTable, len(masks))
	if agg.N() == 0 {
		for i, m := range masks {
			t, err := marginal.Uniform(m)
			if err != nil {
				return nil, err
			}
			out[i] = KWayTable{Beta: m, Table: t}
		}
		return out, nil
	}
	errs := make([]error, len(masks))
	if rec, ok := agg.(kWayReconstructor); ok {
		parallelFor(len(masks), func(i int) {
			t, users, err := rec.kWay(i)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = KWayTable{Beta: masks[i], Table: t, Users: users}
		})
	} else {
		n := agg.N()
		parallelFor(len(masks), func(i int) {
			t, err := agg.Estimate(masks[i])
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = KWayTable{Beta: masks[i], Table: t, Users: n}
		})
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: reconstructing %b: %w", masks[i], err)
		}
	}
	return out, nil
}
