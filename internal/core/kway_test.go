package core

import (
	"math"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/rng"
)

// feedReports generates and consumes n deterministic reports.
func feedReports(t *testing.T, p Protocol, agg Aggregator, n int, seed uint64) {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		rep, err := client.Perturb(uint64(i)%(1<<uint(p.Config().D)), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllKWayTablesMatchesEstimate checks both reconstruction paths —
// the marginal-view fast path (per-marginal accumulators with realized
// user counts) and the Estimate fallback (shared-pool protocols) —
// against per-mask Estimate calls, bit for bit, and pins the Users
// semantics of each.
func TestAllKWayTablesMatchesEstimate(t *testing.T) {
	cfg := Config{D: 5, K: 2, Epsilon: 1.2}
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agg := p.NewAggregator()
			feedReports(t, p, agg, 2500, uint64(kind)+40)
			kway, err := AllKWayTables(agg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			masks := bitops.MasksWithExactlyK(cfg.D, cfg.K)
			if len(kway) != len(masks) {
				t.Fatalf("got %d tables, want C(%d,%d) = %d", len(kway), cfg.D, cfg.K, len(masks))
			}
			var users int
			for i, kt := range kway {
				if kt.Beta != masks[i] {
					t.Fatalf("table %d over %b, want mask order %b", i, kt.Beta, masks[i])
				}
				want, err := agg.Estimate(kt.Beta)
				if err != nil {
					t.Fatal(err)
				}
				for c := range want.Cells {
					if math.Float64bits(kt.Table.Cells[c]) != math.Float64bits(want.Cells[c]) {
						t.Fatalf("mask %b cell %d: %v vs Estimate's %v", kt.Beta, c, kt.Table.Cells[c], want.Cells[c])
					}
				}
				users += kt.Users
			}
			switch kind {
			case MargRR, MargPS, MargHT:
				// Each user lands in exactly one marginal's accumulator.
				if users != agg.N() {
					t.Errorf("per-marginal users sum to %d, want N=%d", users, agg.N())
				}
			default:
				// Every user informs every table.
				if users != agg.N()*len(kway) {
					t.Errorf("users sum %d, want N*tables=%d", users, agg.N()*len(kway))
				}
			}
		})
	}
}

// TestAllKWayTablesEmptyAggregator checks the N=0 path serves uniform
// tables instead of erroring, so a deployment can publish epoch 1
// before any report arrives.
func TestAllKWayTablesEmptyAggregator(t *testing.T) {
	cfg := Config{D: 5, K: 2, Epsilon: 1.2}
	p, err := New(MargHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kway, err := AllKWayTables(p.NewAggregator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kt := range kway {
		if kt.Users != 0 {
			t.Fatalf("empty aggregator claims %d users for %b", kt.Users, kt.Beta)
		}
		for _, c := range kt.Table.Cells {
			if c != 0.25 {
				t.Fatalf("mask %b not uniform: %v", kt.Beta, kt.Table.Cells)
			}
		}
	}
}
