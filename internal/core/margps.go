package core

import (
	"fmt"

	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// margPS is the MargPS protocol (Section 4.3): each user samples one of
// the C(d,k) k-way marginals uniformly and releases the (noisy) index of
// the single occupied cell of their marginal through preferential
// sampling over the 2^k cells. Communication is d + k bits.
type margPS struct {
	cfg   Config
	grr   *mech.GRR
	idx   *margIndex
	cells uint64 // 2^k
}

// NewMargPS constructs the MargPS protocol.
func NewMargPS(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K > 20 {
		return nil, fmt.Errorf("core: MargPS with k=%d would need 2^%d categories", cfg.K, cfg.K)
	}
	grr, err := mech.NewGRR(cfg.Epsilon, 1<<uint(cfg.K))
	if err != nil {
		return nil, err
	}
	return &margPS{cfg: cfg, grr: grr, idx: newMargIndex(cfg.D, cfg.K), cells: 1 << uint(cfg.K)}, nil
}

func (p *margPS) Name() string   { return "MargPS" }
func (p *margPS) Config() Config { return p.cfg }

// CommunicationBits is d bits identifying the sampled marginal plus k
// bits for the reported cell (Table 2).
func (p *margPS) CommunicationBits() int { return p.cfg.D + p.cfg.K }

func (p *margPS) NewClient() Client { return &margPSClient{p: p} }

func (p *margPS) NewAggregator() Aggregator {
	counts := make([][]uint64, len(p.idx.masks))
	for i := range counts {
		counts[i] = make([]uint64, p.cells)
	}
	return &margPSAgg{p: p, counts: counts, users: make([]int, len(p.idx.masks))}
}

type margPSClient struct{ p *margPS }

// Perturb samples a marginal and reports a GRR-perturbed cell index.
func (c *margPSClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= 1<<uint(c.p.cfg.D) {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	beta := c.p.idx.masks[r.Intn(len(c.p.idx.masks))]
	cell := marginal.CellOfRecord(record, beta)
	return Report{Beta: beta, Index: c.p.grr.Perturb(cell, r)}, nil
}

type margPSAgg struct {
	p      *margPS
	counts [][]uint64 // per marginal, per cell: report counts
	users  []int
	n      int
}

func (a *margPSAgg) N() int { return a.n }

func (a *margPSAgg) Consume(rep Report) error {
	pos, ok := a.p.idx.pos[rep.Beta]
	if !ok {
		return fmt.Errorf("core: MargPS report for unknown marginal %b", rep.Beta)
	}
	if rep.Index >= a.p.cells {
		return fmt.Errorf("core: MargPS report cell %d out of range", rep.Index)
	}
	a.counts[pos][rep.Index]++
	a.users[pos]++
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *margPSAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *margPSAgg) Merge(other Aggregator) error {
	o, ok := other.(*margPSAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into MargPS aggregator", other)
	}
	for i := range a.counts {
		for c := range a.counts[i] {
			a.counts[i][c] += o.counts[i][c]
		}
		a.users[i] += o.users[i]
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots.
func (a *margPSAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*margPSAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from MargPS aggregator", other)
	}
	// Validate before mutating: unmerging state that was never merged
	// would wrap the unsigned counters; reject it and leave the
	// receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging MargPS state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i := range a.counts {
		if o.users[i] > a.users[i] {
			return fmt.Errorf("core: unmerging MargPS state never merged here: marginal %d would be left with %d users", i, a.users[i]-o.users[i])
		}
		for c := range a.counts[i] {
			if o.counts[i][c] > a.counts[i][c] {
				return fmt.Errorf("core: unmerging MargPS state never merged here: marginal %d cell %d would underflow", i, c)
			}
		}
	}
	for i := range a.counts {
		for c := range a.counts[i] {
			a.counts[i][c] -= o.counts[i][c]
		}
		a.users[i] -= o.users[i]
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers.
func (a *margPSAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*margPSAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into MargPS aggregator", other)
	}
	for i := range a.counts {
		copy(a.counts[i], o.counts[i])
	}
	copy(a.users, o.users)
	a.n = o.n
	return nil
}

func (a *margPSAgg) kWay(pos int) (*marginal.Table, int, error) {
	t, err := marginal.New(a.p.idx.masks[pos])
	if err != nil {
		return nil, 0, err
	}
	users, err := a.kWayInto(pos, t)
	return t, users, err
}

// kWayInto is kWay writing into the caller's table (dst.Beta must be
// the mask at pos) — the allocation-free kernel behind arena rebuilds,
// with arithmetic identical to kWay.
func (a *margPSAgg) kWayInto(pos int, dst *marginal.Table) (int, error) {
	if a.users[pos] == 0 {
		uniform(dst.Cells)
		return 0, nil
	}
	inv := 1 / float64(a.users[pos])
	for c := uint64(0); c < a.p.cells; c++ {
		dst.Cells[c] = a.p.grr.UnbiasFrequency(float64(a.counts[pos][c]) * inv)
	}
	return a.users[pos], nil
}

// Estimate answers |beta| = k directly and |beta| < k by weighted
// averaging over the collected super-marginals.
func (a *margPSAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBetaWithin(beta, a.p.cfg); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: MargPS aggregator has no reports")
	}
	return a.p.idx.estimateFromKWay(beta, a.kWay)
}
