package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ldpmarginals/internal/marginal"
)

// ShardedAggregator wraps P independent per-shard accumulators of a
// protocol behind the Aggregator interface, so that concurrent writers
// contend on P mutexes instead of one. Aggregation in every protocol is
// associative and commutative (integer counters), so the merged view is
// byte-identical to a single sequential aggregator fed the same reports
// in any order; the equivalence tests in sharded_test.go pin this down.
//
// Writers are routed round-robin: each Consume locks exactly one shard,
// and each ConsumeBatch locks one shard for the whole batch, amortizing
// the lock acquisition across the batch. N is maintained in an atomic
// counter so readers (e.g. a /status endpoint) never take a lock.
//
// Shard count: ingestion throughput scales with shards until they exceed
// the number of writer threads; beyond that, extra shards only grow the
// O(shards * state) memory and Snapshot cost. GOMAXPROCS (the default)
// is the right choice unless the aggregator state is very large (InpRR
// at d close to 20), where fewer shards bound memory.
type ShardedAggregator struct {
	newShard func() Aggregator
	shards   []aggShard
	next     atomic.Uint64
	n        atomic.Int64
	ver      atomic.Uint64
}

// aggShard pairs one accumulator with its lock and its own mutation
// version, advanced under the lock on every state change so a delta
// snapshot (SnapshotDeltaInto) can skip shards that did not move since
// its last capture. The pad separates shards into distinct cache lines
// so uncontended locks don't false-share.
type aggShard struct {
	mu  sync.Mutex
	agg Aggregator
	ver uint64 // mutation version; read and written under mu
	_   [32]byte
}

// NewSharded builds a sharded aggregator over p with the given shard
// count; shards <= 0 selects GOMAXPROCS.
func NewSharded(p Protocol, shards int) *ShardedAggregator {
	return NewShardedFrom(p.NewAggregator, shards)
}

// NewShardedFrom builds a sharded aggregator from an arbitrary empty-
// accumulator factory; shards <= 0 selects GOMAXPROCS. The factory must
// produce aggregators of the same protocol (mutually Merge-able).
func NewShardedFrom(newShard func() Aggregator, shards int) *ShardedAggregator {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &ShardedAggregator{newShard: newShard, shards: make([]aggShard, shards)}
	for i := range s.shards {
		s.shards[i].agg = newShard()
	}
	return s
}

// Shards returns the number of per-shard accumulators.
func (s *ShardedAggregator) Shards() int { return len(s.shards) }

// pick routes the next write to a shard round-robin.
func (s *ShardedAggregator) pick() *aggShard {
	return &s.shards[s.next.Add(1)%uint64(len(s.shards))]
}

// Consume incorporates one report into one shard. Safe for concurrent
// use.
func (s *ShardedAggregator) Consume(rep Report) error {
	sh := s.pick()
	sh.mu.Lock()
	err := sh.agg.Consume(rep)
	if err == nil {
		sh.ver++
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.n.Add(1)
	s.ver.Add(1)
	return nil
}

// ConsumeBatch incorporates the whole batch into one shard under a
// single lock acquisition. Safe for concurrent use; concurrent batches
// land on distinct shards and proceed in parallel. Like the sequential
// contract, reports preceding a rejected report remain consumed.
func (s *ShardedAggregator) ConsumeBatch(reps []Report) error {
	if len(reps) == 0 {
		return nil
	}
	sh := s.pick()
	sh.mu.Lock()
	before := sh.agg.N()
	err := sh.agg.ConsumeBatch(reps)
	consumed := sh.agg.N() - before
	if consumed > 0 {
		sh.ver++
	}
	sh.mu.Unlock()
	s.n.Add(int64(consumed))
	if consumed > 0 {
		s.ver.Add(1)
	}
	return err
}

// N returns the number of reports consumed so far. Lock-free: it reads
// one atomic counter and never blocks writers.
func (s *ShardedAggregator) N() int { return int(s.n.Load()) }

// Version returns a monotonic counter that advances on every state
// mutation (Consume, ConsumeBatch, Merge, UnmarshalState). Lock-free.
// The guarantee is one-directional: the counter advances only *after*
// the mutation is visible, so a version read *before* a Snapshot is
// never newer than the snapshotted state. Labeling an exported state
// blob with such a read lets a consumer skip re-merging an unchanged
// label safely — at worst the label trails the state and a future pull
// re-transfers fresh data; it never skips it. The converse does not
// hold (equal reads around a Snapshot do not prove the state was
// quiescent: a concurrent writer may have unlocked its shard but not
// yet bumped the counter). The counter restarts at zero with the
// process; consumers must treat any change — not only an increase — as
// "state may differ".
func (s *ShardedAggregator) Version() uint64 { return s.ver.Load() }

// Snapshot merges every shard into a fresh sequential aggregator and
// returns it. Shards are locked one at a time, so ingestion stalls for
// at most one shard's merge; the returned aggregator is private to the
// caller and safe to query without locks. Reports arriving while the
// snapshot walks the shards may or may not be included.
func (s *ShardedAggregator) Snapshot() (Aggregator, error) {
	out := s.newShard()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := out.Merge(sh.agg)
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot of shard %d: %w", i, err)
		}
	}
	return out, nil
}

// SnapshotWith merges every shard plus the given foreign state blobs
// (canonical Aggregator.MarshalState bytes from aggregators of the same
// protocol, e.g. pulled from cluster peers) into one private sequential
// aggregator. Each blob is decoded into a fresh accumulator — validating
// it against the deployment geometry and the protocol's counter
// invariants — and folded in through the same Merge path the shards use,
// so the result is byte-identical to a single aggregator that consumed
// every report behind every input. Shards are locked one at a time,
// exactly like Snapshot.
func (s *ShardedAggregator) SnapshotWith(foreign [][]byte) (Aggregator, error) {
	out, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	for i, blob := range foreign {
		src := s.newShard()
		if err := src.UnmarshalState(blob); err != nil {
			return nil, fmt.Errorf("core: foreign state %d: %w", i, err)
		}
		if err := out.Merge(src); err != nil {
			return nil, fmt.Errorf("core: merging foreign state %d: %w", i, err)
		}
	}
	return out, nil
}

// Estimate reconstructs the marginal over beta from a merged snapshot of
// all shards. Safe for concurrent use with writers.
func (s *ShardedAggregator) Estimate(beta uint64) (*marginal.Table, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Estimate(beta)
}

// Merge folds another aggregator of the same protocol into shard 0. The
// other aggregator may itself be sharded (it is snapshotted first) or
// sequential. The other aggregator must not be written concurrently.
func (s *ShardedAggregator) Merge(other Aggregator) error {
	src := other
	if o, ok := other.(*ShardedAggregator); ok {
		snap, err := o.Snapshot()
		if err != nil {
			return err
		}
		src = snap
	}
	added := src.N()
	sh := &s.shards[0]
	sh.mu.Lock()
	err := sh.agg.Merge(src)
	if err == nil {
		sh.ver++
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.n.Add(int64(added))
	s.ver.Add(1)
	return nil
}
