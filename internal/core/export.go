package core

import "fmt"

// ShardExport is one shard's marshaled state, labeled with the shard's
// own mutation version — the unit a delta-capable /state export ships.
type ShardExport struct {
	// Index is the shard's position (stable for the process lifetime).
	Index int
	// Version is the shard's mutation counter, read under the shard lock
	// together with the state copy, so the pair is exactly consistent.
	Version uint64
	// N is the shard's report count at the copy.
	N int
	// State is the shard's canonical Aggregator.MarshalState blob.
	State []byte
}

// ExportShards marshals every non-empty shard under its own lock and
// returns the exports plus the full per-shard version vector (over all
// shards, empty ones included). Each (Version, State) pair is captured
// atomically under the shard lock, so a shard export's label never
// trails its content; across shards the walk is only loosely consistent,
// exactly like Snapshot. Empty shards (no reports consumed) are omitted
// from the exports — their version cannot have moved, since every
// mutation that bumps a shard version also lands reports — but still
// appear in the vector. A consumer diffing two vectors therefore
// registers an empty-to-nonempty transition (the shard version moved)
// without ever shipping empty blobs; an importer missing an omitted
// shard simply holds nothing for it, which is what empty means.
func (s *ShardedAggregator) ExportShards() ([]ShardExport, []uint64, error) {
	exps := make([]ShardExport, 0, len(s.shards))
	vers := make([]uint64, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		vers[i] = sh.ver
		n := sh.agg.N()
		var (
			blob []byte
			err  error
		)
		if n > 0 {
			blob, err = sh.agg.MarshalState()
		}
		sh.mu.Unlock()
		if err != nil {
			return nil, nil, fmt.Errorf("core: exporting shard %d: %w", i, err)
		}
		if n > 0 {
			exps = append(exps, ShardExport{Index: i, Version: vers[i], N: n, State: blob})
		}
	}
	return exps, vers, nil
}
