package core

import (
	"fmt"

	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// margRR is the MargRR protocol (Section 4.3): each user samples one of
// the C(d,k) k-way marginals uniformly, materializes their (one-hot)
// 2^k-cell marginal, perturbs every cell with parallel randomized
// response, and sends the noisy table together with the marginal's
// identity.
type margRR struct {
	cfg   Config
	prr   *mech.PRR
	idx   *margIndex
	cells int // 2^k
}

// NewMargRR constructs the MargRR protocol. K is limited so that the
// 2^K-cell per-user marginal stays practical (the paper itself notes the
// method is hard to justify for large k).
func NewMargRR(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K > 16 {
		return nil, fmt.Errorf("core: MargRR with k=%d would perturb 2^%d cells per user", cfg.K, cfg.K)
	}
	prr, err := mech.NewPRR(cfg.Epsilon, cfg.OptimizedPRR)
	if err != nil {
		return nil, err
	}
	return &margRR{cfg: cfg, prr: prr, idx: newMargIndex(cfg.D, cfg.K), cells: 1 << uint(cfg.K)}, nil
}

func (p *margRR) Name() string   { return "MargRR" }
func (p *margRR) Config() Config { return p.cfg }

// CommunicationBits is d bits identifying the sampled marginal plus 2^k
// bits of perturbed cells (Table 2).
func (p *margRR) CommunicationBits() int { return p.cfg.D + p.cells }

func (p *margRR) NewClient() Client { return &margRRClient{p: p} }

func (p *margRR) NewAggregator() Aggregator {
	ones := make([][]uint64, len(p.idx.masks))
	for i := range ones {
		ones[i] = make([]uint64, p.cells)
	}
	return &margRRAgg{p: p, ones: ones, users: make([]int, len(p.idx.masks))}
}

type margRRClient struct{ p *margRR }

// Perturb samples a marginal and applies PRR to its one-hot cell vector.
func (c *margRRClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= 1<<uint(c.p.cfg.D) {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	beta := c.p.idx.masks[r.Intn(len(c.p.idx.masks))]
	signal := marginal.CellOfRecord(record, beta)
	bits, err := c.p.prr.PerturbOneHot(signal, c.p.cells, r)
	if err != nil {
		return Report{}, err
	}
	return Report{Beta: beta, Bits: bits}, nil
}

type margRRAgg struct {
	p     *margRR
	ones  [][]uint64 // per marginal, per cell: count of 1-reports
	users []int      // per marginal: number of users that sampled it
	n     int
}

func (a *margRRAgg) N() int { return a.n }

func (a *margRRAgg) Consume(rep Report) error {
	pos, ok := a.p.idx.pos[rep.Beta]
	if !ok {
		return fmt.Errorf("core: MargRR report for unknown marginal %b", rep.Beta)
	}
	words := (a.p.cells + 63) / 64
	if len(rep.Bits) != words {
		return fmt.Errorf("core: MargRR report has %d words, want %d", len(rep.Bits), words)
	}
	for c := 0; c < a.p.cells; c++ {
		if rep.Bits[c/64]&(1<<uint(c%64)) != 0 {
			a.ones[pos][c]++
		}
	}
	a.users[pos]++
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *margRRAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *margRRAgg) Merge(other Aggregator) error {
	o, ok := other.(*margRRAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into MargRR aggregator", other)
	}
	for i := range a.ones {
		for c := range a.ones[i] {
			a.ones[i][c] += o.ones[i][c]
		}
		a.users[i] += o.users[i]
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots.
func (a *margRRAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*margRRAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from MargRR aggregator", other)
	}
	// Validate before mutating: unmerging state that was never merged
	// would wrap the unsigned counters; reject it and leave the
	// receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging MargRR state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i := range a.ones {
		if o.users[i] > a.users[i] {
			return fmt.Errorf("core: unmerging MargRR state never merged here: marginal %d would be left with %d users", i, a.users[i]-o.users[i])
		}
		for c := range a.ones[i] {
			if o.ones[i][c] > a.ones[i][c] {
				return fmt.Errorf("core: unmerging MargRR state never merged here: marginal %d cell %d would underflow", i, c)
			}
		}
	}
	for i := range a.ones {
		for c := range a.ones[i] {
			a.ones[i][c] -= o.ones[i][c]
		}
		a.users[i] -= o.users[i]
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers.
func (a *margRRAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*margRRAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into MargRR aggregator", other)
	}
	for i := range a.ones {
		copy(a.ones[i], o.ones[i])
	}
	copy(a.users, o.users)
	a.n = o.n
	return nil
}

// kWay unbiases the PRR counts of the marginal at position pos using its
// realized user count.
func (a *margRRAgg) kWay(pos int) (*marginal.Table, int, error) {
	t, err := marginal.New(a.p.idx.masks[pos])
	if err != nil {
		return nil, 0, err
	}
	users, err := a.kWayInto(pos, t)
	return t, users, err
}

// kWayInto is kWay writing into the caller's table (dst.Beta must be
// the mask at pos) — the allocation-free kernel behind arena rebuilds,
// with arithmetic identical to kWay.
func (a *margRRAgg) kWayInto(pos int, dst *marginal.Table) (int, error) {
	if a.users[pos] == 0 {
		uniform(dst.Cells)
		return 0, nil
	}
	inv := 1 / float64(a.users[pos])
	for c := 0; c < a.p.cells; c++ {
		dst.Cells[c] = a.p.prr.UnbiasFrequency(float64(a.ones[pos][c]) * inv)
	}
	return a.users[pos], nil
}

// Estimate answers |beta| = k directly and |beta| < k by weighted
// averaging over the collected super-marginals.
func (a *margRRAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBetaWithin(beta, a.p.cfg); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: MargRR aggregator has no reports")
	}
	return a.p.idx.estimateFromKWay(beta, a.kWay)
}
