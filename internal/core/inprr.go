package core

import (
	"fmt"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/hadamard"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// inpRR is the InpRR protocol (Section 4.2): every user perturbs all 2^d
// positions of their one-hot input with parallel randomized response and
// sends the full noisy bitmap. Simple and accurate for small d, but the
// communication cost of 2^d bits per user makes it impractical beyond
// d of about 16, exactly as the paper observes.
type inpRR struct {
	cfg  Config
	prr  *mech.PRR
	size int // 2^d
}

// NewInpRR constructs the InpRR protocol. d is limited to
// MaxInputAttributes because the protocol materializes 2^d cells.
func NewInpRR(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.D > MaxInputAttributes {
		return nil, fmt.Errorf("core: InpRR with d=%d would materialize 2^%d cells per user (limit d=%d)",
			cfg.D, cfg.D, MaxInputAttributes)
	}
	prr, err := mech.NewPRR(cfg.Epsilon, cfg.OptimizedPRR)
	if err != nil {
		return nil, err
	}
	return &inpRR{cfg: cfg, prr: prr, size: 1 << uint(cfg.D)}, nil
}

func (p *inpRR) Name() string           { return "InpRR" }
func (p *inpRR) Config() Config         { return p.cfg }
func (p *inpRR) CommunicationBits() int { return p.size }

func (p *inpRR) NewClient() Client { return &inpRRClient{p: p} }

func (p *inpRR) NewAggregator() Aggregator {
	return &inpRRAgg{p: p, ones: make([]uint64, p.size)}
}

type inpRRClient struct{ p *inpRR }

// Perturb applies PRR to the user's one-hot vector (Fact 3.2).
func (c *inpRRClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= uint64(c.p.size) {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	bits, err := c.p.prr.PerturbOneHot(record, c.p.size, r)
	if err != nil {
		return Report{}, err
	}
	return Report{Bits: bits}, nil
}

type inpRRAgg struct {
	p    *inpRR
	ones []uint64 // per-cell count of 1-reports
	n    int
}

func (a *inpRRAgg) N() int { return a.n }

func (a *inpRRAgg) Consume(rep Report) error {
	words := (a.p.size + 63) / 64
	if len(rep.Bits) != words {
		return fmt.Errorf("core: InpRR report has %d words, want %d", len(rep.Bits), words)
	}
	for i := 0; i < a.p.size; i++ {
		if rep.Bits[i/64]&(1<<uint(i%64)) != 0 {
			a.ones[i]++
		}
	}
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *inpRRAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *inpRRAgg) Merge(other Aggregator) error {
	o, ok := other.(*inpRRAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into InpRR aggregator", other)
	}
	for i, c := range o.ones {
		a.ones[i] += c
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots to replace a
// shard's stale contribution.
func (a *inpRRAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*inpRRAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from InpRR aggregator", other)
	}
	// Validate before mutating: unmerging state that was never merged
	// would wrap the unsigned counters; reject it and leave the
	// receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging InpRR state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i, c := range o.ones {
		if c > a.ones[i] {
			return fmt.Errorf("core: unmerging InpRR state never merged here: bit %d would underflow (%d > %d)", i, c, a.ones[i])
		}
	}
	for i, c := range o.ones {
		a.ones[i] -= c
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers (no allocation).
func (a *inpRRAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*inpRRAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into InpRR aggregator", other)
	}
	copy(a.ones, o.ones)
	a.n = o.n
	return nil
}

// SimulateBatch is the statistically exact fast path used by the runner:
// instead of generating a 2^d-bit report per user, it samples the
// aggregate per-cell 1-counts directly as binomials over the true per-cell
// populations. The aggregator's view has exactly the same distribution.
func (a *inpRRAgg) SimulateBatch(records []uint64, r *rng.RNG) error {
	hist := make([]int, a.p.size)
	for _, rec := range records {
		if rec >= uint64(a.p.size) {
			return fmt.Errorf("core: record %d outside 2^%d domain", rec, a.p.cfg.D)
		}
		hist[rec]++
	}
	n := len(records)
	for j := 0; j < a.p.size; j++ {
		trueOnes := hist[j]
		a.ones[j] += uint64(r.Binomial(trueOnes, a.p.prr.P1))
		a.ones[j] += uint64(r.Binomial(n-trueOnes, a.p.prr.P0))
	}
	a.n += n
	return nil
}

// Estimate unbiases every cell of the reconstructed full distribution and
// aggregates it through the marginal operator (Theorem 4.3's estimator).
// The 2^d-cell scan parallelizes across goroutines for large d (see
// scatterCells).
func (a *inpRRAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := a.checkBeta(beta); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: InpRR aggregator has no reports")
	}
	out, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(a.n)
	scatterCells(out, beta, a.p.size, func(j int) float64 {
		return a.p.prr.UnbiasFrequency(float64(a.ones[j]) * inv)
	})
	return out, nil
}

func (a *inpRRAgg) checkBeta(beta uint64) error {
	return checkBetaWithin(beta, a.p.cfg)
}

// reconstructKWayLinear derives every k-way table from ONE full-domain
// Walsh-Hadamard transform of the per-cell 1-counts instead of a 2^d
// scan per table. The marginal operator is linear in the counters:
// with W = WHT(ones), the sum of ones over the cells of any marginal
// beta is the inverse transform of W's subcube alpha ⪯ beta, and the
// PRR unbiasing is affine, so
//
//	est_c = (S_c/n - 2^{d-k} * P0) / (P1 - P0),  S_c = sum of ones in c.
//
// All WHT intermediates are sums/differences of integers (exact in
// float64 far beyond the supported d), so S_c is exact; only the final
// affine step rounds differently from Estimate's per-cell summation,
// keeping the two within ~1e-12 TV. Cost: O(d 2^d) once, then O(k 2^k)
// per table — the delta-refresh fast path.
func (a *inpRRAgg) reconstructKWayLinear(masks []uint64, tables []*marginal.Table, users []int) error {
	if a.n == 0 {
		return fmt.Errorf("core: InpRR aggregator has no reports")
	}
	w := hadamard.GetVec(a.p.size)
	defer hadamard.PutVec(w)
	for j, c := range a.ones {
		w[j] = float64(c)
	}
	if err := hadamard.WHT(w); err != nil {
		return err
	}
	invN := 1 / float64(a.n)
	p0, p1 := a.p.prr.P0, a.p.prr.P1
	scale := 1 / (p1 - p0)
	errs := make([]error, len(masks))
	parallelFor(len(masks), func(i int) {
		cells := tables[i].Cells
		for c := range cells {
			cells[c] = w[bitops.Expand(uint64(c), masks[i])]
		}
		if err := hadamard.InverseWHT(cells); err != nil {
			errs[i] = err
			return
		}
		group := float64(a.p.size / len(cells))
		for c := range cells {
			cells[c] = (cells[c]*invN - group*p0) * scale
		}
		users[i] = a.n
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkBetaWithin validates a queried marginal against the deployment
// configuration: within the attribute set and no larger than K.
func checkBetaWithin(beta uint64, cfg Config) error {
	if beta == 0 {
		return fmt.Errorf("core: empty marginal query")
	}
	if beta >= 1<<uint(cfg.D) {
		return fmt.Errorf("core: marginal %b outside %d attributes", beta, cfg.D)
	}
	if k := bitops.OnesCount(beta); k > cfg.K {
		return fmt.Errorf("core: marginal has %d attributes but the deployment supports k<=%d", k, cfg.K)
	}
	return nil
}
