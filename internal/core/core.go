// Package core implements the paper's primary contribution: six protocols
// for k-way marginal release under epsilon-local differential privacy
// (Section 4), behind a common Protocol / Client / Aggregator interface.
//
// The protocols differ along two axes — the view of the data (the full
// input distribution vs. a randomly sampled marginal) and the release
// primitive (parallel randomized response, preferential sampling, or
// randomized response on a sampled Hadamard coefficient):
//
//	             PRR        PS (GRR)    Hadamard+RR
//	input view   InpRR      InpPS       InpHT
//	marginal     MargRR     MargPS      MargHT
//
// Every client emits a single Report per user, every aggregator consumes
// reports and answers Estimate(beta) for any |beta| <= K, and aggregation
// is associative (Merge) so populations can be simulated in parallel.
package core

import (
	"fmt"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

// MaxInputAttributes bounds d for the input-materializing protocols
// InpRR and InpPS, which must handle 2^d cells. The paper itself advises
// against these methods beyond small d (Section 5.2).
const MaxInputAttributes = 20

// Kind identifies one of the six protocols.
type Kind int

// The six protocol kinds, in the order of the paper's Table 2.
const (
	InpRR Kind = iota
	InpPS
	InpHT
	MargRR
	MargPS
	MargHT
)

// AllKinds lists every protocol kind in Table 2 order.
func AllKinds() []Kind {
	return []Kind{InpRR, InpPS, InpHT, MargRR, MargPS, MargHT}
}

// String returns the paper's name for the protocol.
func (k Kind) String() string {
	switch k {
	case InpRR:
		return "InpRR"
	case InpPS:
		return "InpPS"
	case InpHT:
		return "InpHT"
	case MargRR:
		return "MargRR"
	case MargPS:
		return "MargPS"
	case MargHT:
		return "MargHT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config carries the shared parameters of a marginal-release deployment.
type Config struct {
	// D is the number of binary attributes per user.
	D int
	// K is the largest marginal size the collection must support; any
	// |beta| <= K is answerable afterwards.
	K int
	// Epsilon is the local differential privacy parameter, shared by all
	// users.
	Epsilon float64
	// OptimizedPRR selects the Wang et al. probabilities for the
	// PRR-based protocols (the paper's default experimental setting);
	// false selects the vanilla symmetric eps/2 probabilities of
	// Fact 3.2.
	OptimizedPRR bool
}

// Validate checks the configuration ranges shared by all protocols.
func (c Config) Validate() error {
	if c.D < 1 || c.D > bitops.MaxAttributes {
		return fmt.Errorf("core: d=%d out of range (1..%d)", c.D, bitops.MaxAttributes)
	}
	if c.K < 1 || c.K > c.D {
		return fmt.Errorf("core: k=%d out of range (1..d=%d)", c.K, c.D)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: epsilon must be positive, got %v", c.Epsilon)
	}
	return nil
}

// Report is the single message a user sends to the aggregator. Which
// fields are meaningful depends on the protocol:
//
//	InpRR:   Bits (2^d-bit bitmap)
//	InpPS:   Index (reported cell)
//	InpHT:   Index (coefficient mask), Sign
//	MargRR:  Beta (sampled marginal), Bits (2^k-bit bitmap)
//	MargPS:  Beta, Index (compact cell in the marginal)
//	MargHT:  Beta, Index (compact coefficient), Sign
type Report struct {
	Beta  uint64
	Index uint64
	Sign  int8
	Bits  []uint64
}

// Client produces one LDP report per user record.
type Client interface {
	// Perturb encodes and randomizes a user's record. The record is an
	// attribute bitmask within the protocol's 2^d domain.
	Perturb(record uint64, r *rng.RNG) (Report, error)
}

// Aggregator accumulates reports and reconstructs marginals. It also
// satisfies marginal.Estimator.
type Aggregator interface {
	// Consume incorporates one user report.
	Consume(rep Report) error
	// ConsumeBatch incorporates a batch of reports, amortizing the
	// per-report dispatch (and, for callers holding a lock around the
	// call, the per-report locking) overhead. It behaves exactly like
	// consuming the reports one by one: reports preceding a rejected
	// report remain consumed, and the returned error is a *BatchError
	// identifying the first rejected report.
	ConsumeBatch(reps []Report) error
	// Estimate reconstructs the marginal over beta, |beta| <= K.
	Estimate(beta uint64) (*marginal.Table, error)
	// Merge folds another aggregator of the same protocol into this one.
	Merge(other Aggregator) error
	// N returns the number of reports consumed.
	N() int
	// MarshalState serializes the accumulated state (integer counters)
	// into a self-describing blob. The encoding is canonical and
	// deterministic: equal states marshal byte-identically, and
	// UnmarshalState followed by MarshalState reproduces the input
	// byte-for-byte. The durable store (internal/store) persists these
	// blobs as counter snapshots.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces the aggregator's state with a blob
	// produced by MarshalState on an aggregator of the same protocol and
	// configuration. A blob from a different protocol, configuration, or
	// a corrupted byte stream fails with an error and leaves the
	// receiver unchanged.
	UnmarshalState(data []byte) error
}

// BatchError reports the first rejected report of a ConsumeBatch call.
// Reports at positions < Index were consumed.
type BatchError struct {
	// Index is the position of the rejected report within the batch.
	Index int
	// Err is the rejection returned by Consume.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch report %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// ConsumeAll is the reference ConsumeBatch implementation: it feeds the
// reports to Consume in order, wrapping the first rejection in a
// *BatchError. Out-of-package aggregators delegate to it; the six core
// protocol aggregators intentionally inline the same loop with their
// concrete receivers instead, so Consume devirtualizes (and inlines) in
// the batch ingestion hot path rather than dispatching through the
// interface once per report.
func ConsumeAll(a Aggregator, reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

// Protocol couples a client construction with its aggregator and cost
// accounting. Implementations are immutable after construction and safe
// for concurrent use.
type Protocol interface {
	// Name returns the paper's protocol name.
	Name() string
	// Config returns the deployment parameters.
	Config() Config
	// CommunicationBits is the per-user message size in bits (Table 2).
	CommunicationBits() int
	// NewClient returns a client for this protocol.
	NewClient() Client
	// NewAggregator returns an empty aggregator for this protocol.
	NewAggregator() Aggregator
}

// New constructs the protocol of the given kind.
func New(kind Kind, cfg Config) (Protocol, error) {
	switch kind {
	case InpRR:
		return NewInpRR(cfg)
	case InpPS:
		return NewInpPS(cfg)
	case InpHT:
		return NewInpHT(cfg)
	case MargRR:
		return NewMargRR(cfg)
	case MargPS:
		return NewMargPS(cfg)
	case MargHT:
		return NewMargHT(cfg)
	default:
		return nil, fmt.Errorf("core: unknown protocol kind %d", int(kind))
	}
}

// margIndex is the shared bookkeeping of the marginal-view protocols: the
// list C of all C(d,k) k-way marginals and the inverse lookup.
type margIndex struct {
	masks []uint64
	pos   map[uint64]int
}

func newMargIndex(d, k int) *margIndex {
	masks := bitops.MasksWithExactlyK(d, k)
	pos := make(map[uint64]int, len(masks))
	for i, m := range masks {
		pos[m] = i
	}
	return &margIndex{masks: masks, pos: pos}
}

// supersetsOf returns the positions in C of the k-way marginals
// containing beta.
func (mi *margIndex) supersetsOf(beta uint64) []int {
	var out []int
	for i, m := range mi.masks {
		if bitops.IsSubset(beta, m) {
			out = append(out, i)
		}
	}
	return out
}

// estimateFromKWay answers a sub-marginal query |beta| <= k given a
// function producing the estimated k-way table and user count for a
// position in C. Estimates from every k-way superset of beta are
// marginalized down to beta and averaged weighted by their user counts.
//
// Reconstructing and marginalizing each superset table is the expensive
// step (an inverse transform or an unbiasing pass over 2^k cells), so
// the supersets fan out across goroutines; the weighted average is then
// reduced sequentially in superset order, making the result
// bit-identical to the sequential loop for any GOMAXPROCS. kWay must be
// safe for concurrent calls with distinct positions (the aggregators'
// reconstructions only read accumulator state).
func (mi *margIndex) estimateFromKWay(beta uint64, kWay func(pos int) (*marginal.Table, int, error)) (*marginal.Table, error) {
	if p, ok := mi.pos[beta]; ok {
		t, _, err := kWay(p)
		return t, err
	}
	supers := mi.supersetsOf(beta)
	if len(supers) == 0 {
		return nil, fmt.Errorf("core: marginal %b is not contained in any collected %d-way marginal", beta, bitops.OnesCount(mi.masks[0]))
	}
	out, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	type weighted struct {
		sub *marginal.Table // scaled by its user count; nil when n == 0
		n   int
		err error
	}
	subs := make([]weighted, len(supers))
	parallelFor(len(supers), func(i int) {
		t, n, err := kWay(supers[i])
		if err != nil {
			subs[i].err = err
			return
		}
		if n == 0 {
			return
		}
		sub, err := t.MarginalizeTo(beta)
		if err != nil {
			subs[i].err = err
			return
		}
		sub.Scale(float64(n))
		subs[i] = weighted{sub: sub, n: n}
	})
	var weight float64
	for i := range subs {
		if subs[i].err != nil {
			return nil, subs[i].err
		}
		if subs[i].sub == nil {
			continue
		}
		if err := out.Add(subs[i].sub); err != nil {
			return nil, err
		}
		weight += float64(subs[i].n)
	}
	if weight == 0 {
		return marginal.Uniform(beta)
	}
	out.Scale(1 / weight)
	return out, nil
}
