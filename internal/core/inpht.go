package core

import (
	"fmt"

	"ldpmarginals/internal/hadamard"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// inpHT is the InpHT protocol (Section 4.2, Algorithms 1 and 2) — the
// paper's overall winner. Each user samples one coefficient index from
// the set T of Hadamard coefficients sufficient for all k-way marginals
// (|alpha| between 1 and k, Lemma 3.7), evaluates the scaled coefficient
// of their one-hot input ((-1)^{<j, alpha>}), and releases it through
// binary randomized response. Communication is d+1 bits and, unlike the
// marginal-view protocols, every report informs many marginals at once.
type inpHT struct {
	cfg    Config
	rr     *mech.RR
	coeffs []uint64       // T, the collected coefficient masks
	pos    map[uint64]int // coefficient mask -> position in coeffs
}

// NewInpHT constructs the InpHT protocol. Any d up to
// bitops.MaxAttributes is supported: the aggregator state is |T| = O(d^k)
// counters, never 2^d.
func NewInpHT(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rr, err := mech.NewRR(cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	coeffs := hadamard.CoefficientSet(cfg.D, cfg.K)
	pos := make(map[uint64]int, len(coeffs))
	for i, alpha := range coeffs {
		pos[alpha] = i
	}
	return &inpHT{cfg: cfg, rr: rr, coeffs: coeffs, pos: pos}, nil
}

func (p *inpHT) Name() string   { return "InpHT" }
func (p *inpHT) Config() Config { return p.cfg }

// CommunicationBits is d bits for the coefficient index plus 1 bit for
// the randomized-response output (Table 2).
func (p *inpHT) CommunicationBits() int { return p.cfg.D + 1 }

func (p *inpHT) NewClient() Client { return &inpHTClient{p: p} }

func (p *inpHT) NewAggregator() Aggregator {
	return &inpHTAgg{
		p:      p,
		sums:   make([]int64, len(p.coeffs)),
		counts: make([]int64, len(p.coeffs)),
	}
}

type inpHTClient struct{ p *inpHT }

// Perturb implements Algorithm 1: sample a coefficient uniformly from T,
// evaluate its sign on the input, and flip it via eps-RR.
func (c *inpHTClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= 1<<uint(c.p.cfg.D) {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	alpha := c.p.coeffs[r.Intn(len(c.p.coeffs))]
	sign := c.p.rr.PerturbSign(hadamard.Sign(record, alpha), r)
	return Report{Index: alpha, Sign: int8(sign)}, nil
}

type inpHTAgg struct {
	p      *inpHT
	sums   []int64 // per-coefficient sum of reported +-1 signs
	counts []int64 // per-coefficient report counts (N_j in Algorithm 2)
	n      int
	// normalizeByExpected switches the estimator denominator from the
	// realized per-coefficient count N_j (Algorithm 2) to the expected
	// count N*p_s = N/|T|. Exposed as an ablation; Algorithm 2's choice
	// is the default.
	normalizeByExpected bool
}

// SetNormalizeByExpected toggles the ablation estimator that divides by
// the expected per-coefficient sample count N/|T| instead of the realized
// count N_j. Reachable through the Aggregator interface via assertion to
// interface{ SetNormalizeByExpected(bool) }.
func (a *inpHTAgg) SetNormalizeByExpected(v bool) { a.normalizeByExpected = v }

func (a *inpHTAgg) N() int { return a.n }

func (a *inpHTAgg) Consume(rep Report) error {
	i, ok := a.p.pos[rep.Index]
	if !ok {
		return fmt.Errorf("core: InpHT report for coefficient %b outside T", rep.Index)
	}
	if rep.Sign != 1 && rep.Sign != -1 {
		return fmt.Errorf("core: InpHT report sign %d is not +-1", rep.Sign)
	}
	a.sums[i] += int64(rep.Sign)
	a.counts[i]++
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *inpHTAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *inpHTAgg) Merge(other Aggregator) error {
	o, ok := other.(*inpHTAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into InpHT aggregator", other)
	}
	for i := range a.sums {
		a.sums[i] += o.sums[i]
		a.counts[i] += o.counts[i]
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots.
func (a *inpHTAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*inpHTAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from InpHT aggregator", other)
	}
	// Validate before mutating: every report contributes one ±1 sum
	// with one +1 count, so any legitimate remainder keeps counts
	// non-negative and |sum| <= count per coefficient. Unmerging state
	// that was never merged here breaks that invariant; reject it and
	// leave the receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging InpHT state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i := range a.sums {
		c := a.counts[i] - o.counts[i]
		s := a.sums[i] - o.sums[i]
		if c < 0 || s > c || -s > c {
			return fmt.Errorf("core: unmerging InpHT state never merged here: coefficient %d would be left with count %d, sum %d", i, c, s)
		}
	}
	for i := range a.sums {
		a.sums[i] -= o.sums[i]
		a.counts[i] -= o.counts[i]
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers.
func (a *inpHTAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*inpHTAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into InpHT aggregator", other)
	}
	copy(a.sums, o.sums)
	copy(a.counts, o.counts)
	a.n = o.n
	a.normalizeByExpected = o.normalizeByExpected
	return nil
}

// ScaledCoefficient returns the unbiased estimate of m_alpha, normalizing
// by the realized per-coefficient report count as in Algorithm 2 (and 0
// when the coefficient was never sampled). It implements
// hadamard.CoefficientSource so reconstruction can read it directly.
func (a *inpHTAgg) ScaledCoefficient(alpha uint64) float64 {
	if alpha == 0 {
		return 1
	}
	i, ok := a.p.pos[alpha]
	if !ok || a.counts[i] == 0 {
		return 0
	}
	denom := float64(a.counts[i])
	if a.normalizeByExpected {
		denom = float64(a.n) / float64(len(a.p.coeffs))
		if denom == 0 {
			return 0
		}
	}
	return a.p.rr.UnbiasSign(float64(a.sums[i]) / denom)
}

// Estimate reconstructs the marginal over beta from the 2^|beta|
// coefficients alpha ⪯ beta (Lemma 3.7).
func (a *inpHTAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBetaWithin(beta, a.p.cfg); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: InpHT aggregator has no reports")
	}
	cells := hadamard.ReconstructMarginal(a, beta)
	return marginal.FromCells(beta, cells)
}

// estimateInto is Estimate writing into the caller's table — the
// allocation-free kernel behind arena rebuilds. Identical arithmetic
// (gather the subcube's coefficients, one inverse transform), so arena
// reconstructions are bit-identical to Estimate's.
func (a *inpHTAgg) estimateInto(dst *marginal.Table) error {
	if err := checkBetaWithin(dst.Beta, a.p.cfg); err != nil {
		return err
	}
	if a.n == 0 {
		return fmt.Errorf("core: InpHT aggregator has no reports")
	}
	hadamard.ReconstructMarginalInto(dst.Cells, a, dst.Beta)
	return nil
}
