package core

import (
	"fmt"

	"ldpmarginals/internal/hadamard"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// margHT is the MargHT protocol (Section 4.3): each user samples one of
// the C(d,k) k-way marginals, takes the Hadamard transform of their
// (one-hot) marginal, and releases one randomly chosen coefficient via
// randomized response. Unlike InpHT, information is not shared between
// marginals, so each of the C(d,k) tables is reconstructed from its own
// users only.
//
// The user samples among the 2^k - 1 non-constant coefficients of the
// sampled marginal; the alpha = 0 coefficient is always exactly 1 and
// carrying it would waste budget (an ablation bench quantifies this
// choice).
type margHT struct {
	cfg   Config
	rr    *mech.RR
	idx   *margIndex
	cells int // 2^k
}

// NewMargHT constructs the MargHT protocol.
func NewMargHT(cfg Config) (Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K > 20 {
		return nil, fmt.Errorf("core: MargHT with k=%d would track 2^%d coefficients per marginal", cfg.K, cfg.K)
	}
	rr, err := mech.NewRR(cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	return &margHT{cfg: cfg, rr: rr, idx: newMargIndex(cfg.D, cfg.K), cells: 1 << uint(cfg.K)}, nil
}

func (p *margHT) Name() string   { return "MargHT" }
func (p *margHT) Config() Config { return p.cfg }

// CommunicationBits is d bits for the marginal, k bits for the
// coefficient index, and 1 bit for the perturbed value (Table 2).
func (p *margHT) CommunicationBits() int { return p.cfg.D + p.cfg.K + 1 }

func (p *margHT) NewClient() Client { return &margHTClient{p: p} }

func (p *margHT) NewAggregator() Aggregator {
	sums := make([][]int64, len(p.idx.masks))
	counts := make([][]int64, len(p.idx.masks))
	for i := range sums {
		sums[i] = make([]int64, p.cells)
		counts[i] = make([]int64, p.cells)
	}
	return &margHTAgg{p: p, sums: sums, counts: counts, users: make([]int, len(p.idx.masks))}
}

type margHTClient struct{ p *margHT }

// Perturb samples a marginal and a non-constant coefficient of its
// subcube, evaluates the coefficient's sign on the user's compact cell,
// and flips it through eps-RR. The compact-index identity
// <Expand(alpha,beta), record> = <alpha, Compress(record,beta)> makes the
// k-bit computation equivalent to the full-domain one.
func (c *margHTClient) Perturb(record uint64, r *rng.RNG) (Report, error) {
	if record >= 1<<uint(c.p.cfg.D) {
		return Report{}, fmt.Errorf("core: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	beta := c.p.idx.masks[r.Intn(len(c.p.idx.masks))]
	cell := marginal.CellOfRecord(record, beta)
	alpha := uint64(1 + r.Intn(c.p.cells-1)) // compact, non-zero
	sign := c.p.rr.PerturbSign(hadamard.Sign(cell, alpha), r)
	return Report{Beta: beta, Index: alpha, Sign: int8(sign)}, nil
}

type margHTAgg struct {
	p      *margHT
	sums   [][]int64 // per marginal, per compact coefficient: sum of signs
	counts [][]int64 // per marginal, per compact coefficient: report count
	users  []int
	n      int
}

func (a *margHTAgg) N() int { return a.n }

func (a *margHTAgg) Consume(rep Report) error {
	pos, ok := a.p.idx.pos[rep.Beta]
	if !ok {
		return fmt.Errorf("core: MargHT report for unknown marginal %b", rep.Beta)
	}
	if rep.Index == 0 || rep.Index >= uint64(a.p.cells) {
		return fmt.Errorf("core: MargHT report coefficient %d out of range", rep.Index)
	}
	if rep.Sign != 1 && rep.Sign != -1 {
		return fmt.Errorf("core: MargHT report sign %d is not +-1", rep.Sign)
	}
	a.sums[pos][rep.Index] += int64(rep.Sign)
	a.counts[pos][rep.Index]++
	a.users[pos]++
	a.n++
	return nil
}

// ConsumeBatch incorporates reps in order; see Aggregator.
func (a *margHTAgg) ConsumeBatch(reps []Report) error {
	for i := range reps {
		if err := a.Consume(reps[i]); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

func (a *margHTAgg) Merge(other Aggregator) error {
	o, ok := other.(*margHTAgg)
	if !ok {
		return fmt.Errorf("core: merging %T into MargHT aggregator", other)
	}
	for i := range a.sums {
		for c := range a.sums[i] {
			a.sums[i][c] += o.sums[i][c]
			a.counts[i][c] += o.counts[i][c]
		}
		a.users[i] += o.users[i]
	}
	a.n += o.n
	return nil
}

// Unmerge subtracts a previously merged contribution — the exact
// integer inverse of Merge, used by delta snapshots.
func (a *margHTAgg) Unmerge(other Aggregator) error {
	o, ok := other.(*margHTAgg)
	if !ok {
		return fmt.Errorf("core: unmerging %T from MargHT aggregator", other)
	}
	// Validate before mutating: every report contributes one ±1 sum
	// with one +1 count per sampled marginal, so a legitimate
	// remainder keeps counts non-negative and |sum| <= count per
	// cell. Unmerging state that was never merged here breaks that
	// invariant; reject it and leave the receiver unchanged.
	if o.n > a.n {
		return fmt.Errorf("core: unmerging MargHT state with n=%d from aggregator holding n=%d", o.n, a.n)
	}
	for i := range a.sums {
		if o.users[i] > a.users[i] {
			return fmt.Errorf("core: unmerging MargHT state never merged here: marginal %d would be left with %d users", i, a.users[i]-o.users[i])
		}
		for c := range a.sums[i] {
			cnt := a.counts[i][c] - o.counts[i][c]
			s := a.sums[i][c] - o.sums[i][c]
			if cnt < 0 || s > cnt || -s > cnt {
				return fmt.Errorf("core: unmerging MargHT state never merged here: marginal %d cell %d would be left with count %d, sum %d", i, c, cnt, s)
			}
		}
	}
	for i := range a.sums {
		for c := range a.sums[i] {
			a.sums[i][c] -= o.sums[i][c]
			a.counts[i][c] -= o.counts[i][c]
		}
		a.users[i] -= o.users[i]
	}
	a.n -= o.n
	return nil
}

// CopyStateFrom replaces the receiver's state with a deep copy of
// other's, reusing the receiver's buffers.
func (a *margHTAgg) CopyStateFrom(other Aggregator) error {
	o, ok := other.(*margHTAgg)
	if !ok {
		return fmt.Errorf("core: copying %T into MargHT aggregator", other)
	}
	for i := range a.sums {
		copy(a.sums[i], o.sums[i])
		copy(a.counts[i], o.counts[i])
	}
	copy(a.users, o.users)
	a.n = o.n
	return nil
}

// kWay reconstructs the marginal at position pos from its estimated
// coefficient vector by one inverse transform over the 2^k subcube.
func (a *margHTAgg) kWay(pos int) (*marginal.Table, int, error) {
	t, err := marginal.New(a.p.idx.masks[pos])
	if err != nil {
		return nil, 0, err
	}
	users, err := a.kWayInto(pos, t)
	return t, users, err
}

// kWayInto is kWay writing into the caller's table (dst.Beta must be
// the mask at pos) — the allocation-free kernel behind arena rebuilds,
// with arithmetic identical to kWay.
func (a *margHTAgg) kWayInto(pos int, dst *marginal.Table) (int, error) {
	if a.users[pos] == 0 {
		uniform(dst.Cells)
		return 0, nil
	}
	cells := dst.Cells
	cells[0] = 1
	for c := 1; c < a.p.cells; c++ {
		if a.counts[pos][c] == 0 {
			cells[c] = 0
			continue
		}
		mean := float64(a.sums[pos][c]) / float64(a.counts[pos][c])
		cells[c] = a.rrUnbias(mean)
	}
	if err := hadamard.InverseWHT(cells); err != nil {
		return 0, err
	}
	return a.users[pos], nil
}

func (a *margHTAgg) rrUnbias(mean float64) float64 { return a.p.rr.UnbiasSign(mean) }

// Estimate answers |beta| = k directly and |beta| < k by weighted
// averaging over the collected super-marginals.
func (a *margHTAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBetaWithin(beta, a.p.cfg); err != nil {
		return nil, err
	}
	if a.n == 0 {
		return nil, fmt.Errorf("core: MargHT aggregator has no reports")
	}
	return a.p.idx.estimateFromKWay(beta, a.kWay)
}
