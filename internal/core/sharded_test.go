package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/rng"
)

// shardedTestConfig is the paper's default experimental setting; small
// enough that all six protocols (including the 2^d-materializing input
// view) run fast.
func shardedTestConfig() Config {
	return Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true}
}

// perturbReports generates n deterministic reports under a fixed seed.
func perturbReports(t *testing.T, p Protocol, n int, seed uint64) []Report {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return reps
}

// assertTablesBitIdentical compares every answerable marginal of the two
// aggregators cell-by-cell at full float64 precision.
func assertTablesBitIdentical(t *testing.T, got, want Aggregator, cfg Config) {
	t.Helper()
	for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K) {
		g, err := got.Estimate(beta)
		if err != nil {
			t.Fatalf("estimate %b: %v", beta, err)
		}
		w, err := want.Estimate(beta)
		if err != nil {
			t.Fatalf("reference estimate %b: %v", beta, err)
		}
		if len(g.Cells) != len(w.Cells) {
			t.Fatalf("beta %b: %d cells vs %d", beta, len(g.Cells), len(w.Cells))
		}
		for c := range w.Cells {
			if math.Float64bits(g.Cells[c]) != math.Float64bits(w.Cells[c]) {
				t.Fatalf("beta %b cell %d: sharded %v, sequential %v", beta, c, g.Cells[c], w.Cells[c])
			}
		}
	}
}

// TestShardedEquivalentToSequential is the core guarantee of the sharded
// pipeline: for every protocol, a ShardedAggregator fed a fixed report
// stream concurrently — through interleaved Consume and ConsumeBatch
// calls — produces byte-identical marginal tables to a sequential
// aggregator fed the same stream. Aggregation state is integer counters,
// so shard partitioning and arrival order are invisible in the estimate.
func TestShardedEquivalentToSequential(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := New(kind, shardedTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			reps := perturbReports(t, p, 2000, 42)

			seq := p.NewAggregator()
			if err := seq.ConsumeBatch(reps); err != nil {
				t.Fatal(err)
			}

			sh := NewSharded(p, 7)
			// Feed concurrently: 8 writers, alternating batch and
			// single-report ingestion over disjoint slices.
			const writers = 8
			chunk := (len(reps) + writers - 1) / writers
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				lo, hi := w*chunk, min((w+1)*chunk, len(reps))
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					slice := reps[lo:hi]
					if w%2 == 0 {
						if err := sh.ConsumeBatch(slice); err != nil {
							errs <- err
						}
						return
					}
					for i := range slice {
						if err := sh.Consume(slice[i]); err != nil {
							errs <- err
							return
						}
					}
				}(w, lo, hi)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if sh.N() != len(reps) || seq.N() != len(reps) {
				t.Fatalf("sharded N=%d sequential N=%d, want %d", sh.N(), seq.N(), len(reps))
			}
			assertTablesBitIdentical(t, sh, seq, shardedTestConfig())

			// A snapshot must answer identically and count identically.
			snap, err := sh.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap.N() != len(reps) {
				t.Fatalf("snapshot N=%d, want %d", snap.N(), len(reps))
			}
			assertTablesBitIdentical(t, snap, seq, shardedTestConfig())
		})
	}
}

// TestShardedMerge folds one sharded aggregator into another and into a
// sequential one, checking counts and estimates survive both directions.
func TestShardedMerge(t *testing.T) {
	p, err := New(InpHT, shardedTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	reps := perturbReports(t, p, 1200, 9)
	a, b := NewSharded(p, 3), NewSharded(p, 5)
	if err := a.ConsumeBatch(reps[:500]); err != nil {
		t.Fatal(err)
	}
	if err := b.ConsumeBatch(reps[500:]); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != len(reps) {
		t.Fatalf("merged N=%d, want %d", a.N(), len(reps))
	}
	seq := p.NewAggregator()
	if err := seq.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	assertTablesBitIdentical(t, a, seq, shardedTestConfig())
}

// TestShardedRejectsBadReports checks that rejected reports are not
// counted, for both single and batch ingestion, and that the batch error
// carries the index of the first rejected report.
func TestShardedRejectsBadReports(t *testing.T) {
	p, err := New(InpHT, shardedTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(p, 4)
	good := perturbReports(t, p, 3, 1)
	bad := Report{Index: 0b11111111, Sign: 1} // |alpha| > k: outside T
	if err := sh.Consume(bad); err == nil {
		t.Fatal("bad report accepted")
	}
	if sh.N() != 0 {
		t.Fatalf("rejected report counted: N=%d", sh.N())
	}
	batch := []Report{good[0], good[1], bad, good[2]}
	err = sh.ConsumeBatch(batch)
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("batch error = %v, want *BatchError at index 2", err)
	}
	if sh.N() != 2 {
		t.Fatalf("N=%d after partial batch, want 2", sh.N())
	}
}

// TestNewShardedDefaults pins the shard-count defaulting.
func TestNewShardedDefaults(t *testing.T) {
	p, err := New(MargPS, shardedTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := NewSharded(p, 0).Shards(); got < 1 {
		t.Fatalf("default shards = %d", got)
	}
	if got := NewSharded(p, 3).Shards(); got != 3 {
		t.Fatalf("explicit shards = %d, want 3", got)
	}
}
