package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// parallelFor runs f(i) for every i in [0, n) across at most GOMAXPROCS
// goroutines and returns once all calls complete. Iterations are handed
// out work-stealing style (one atomic fetch per iteration), so uneven
// per-iteration cost still balances. f must be safe to call
// concurrently for distinct i.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// minParallelCells is the full-domain size (2^d) from which the
// input-view estimators fan their cell scans out across goroutines. The
// paper's default d=8 stays on the sequential path bit-for-bit; the
// large-d regimes (InpRR/InpPS up to d=20 scan 2^20 cells per query)
// parallelize.
const minParallelCells = 1 << 12

// scatterChunks is the fixed partition count of a parallel cell scan.
// It is a constant — not GOMAXPROCS — so the chunk boundaries, and with
// them the floating-point reduction order, are identical on every
// machine: results are deterministic for a given aggregator state
// regardless of core count.
const scatterChunks = 64

// scatterCells accumulates cell(j) into out.Cells[Compress(j, beta)]
// for every full-domain index j in [0, size) — the shared reconstruction
// scan of the input-view estimators. Small domains run the plain
// sequential loop; large domains split j into scatterChunks fixed
// ranges, scan them in parallel into per-chunk partial tables, and
// reduce the partials in chunk order. The chunked path is taken for
// every large domain — even on a single core, where parallelFor
// degrades to an in-order loop — so the summation grouping (and with
// it every last bit of the result) is the same on every machine.
func scatterCells(out *marginal.Table, beta uint64, size int, cell func(j int) float64) {
	if size < minParallelCells {
		for j := 0; j < size; j++ {
			out.Cells[bitops.Compress(uint64(j), beta)] += cell(j)
		}
		return
	}
	chunkSize := (size + scatterChunks - 1) / scatterChunks
	partials := make([][]float64, scatterChunks)
	parallelFor(scatterChunks, func(ci int) {
		lo, hi := ci*chunkSize, min((ci+1)*chunkSize, size)
		if lo >= hi {
			return
		}
		part := make([]float64, len(out.Cells))
		for j := lo; j < hi; j++ {
			part[bitops.Compress(uint64(j), beta)] += cell(j)
		}
		partials[ci] = part
	})
	for _, part := range partials {
		if part == nil {
			continue
		}
		for c, v := range part {
			out.Cells[c] += v
		}
	}
}
