package core

import (
	"fmt"

	"ldpmarginals/internal/wire"
)

// State codecs for the six protocol aggregators. Aggregation state is
// integer counters, so a snapshot is a compact varint blob and a
// restore is byte-identical to the state that was marshaled (pinned by
// the per-protocol round-trip tests in state_test.go). Each codec
// validates the blob against the receiver's configured geometry and the
// protocols' counter invariants, so a blob from a different deployment
// or a corrupted byte stream is rejected instead of silently skewing
// estimates; on any error the receiver is left unchanged.

// State kind bytes. These are part of the persisted snapshot format: do
// not renumber. They mirror the encoding wire tags for the protocols
// both name.
const (
	stateKindInpRR  byte = 1
	stateKindInpPS  byte = 2
	stateKindInpHT  byte = 3
	stateKindMargRR byte = 4
	stateKindMargPS byte = 5
	stateKindMargHT byte = 6

	stateVersion byte = 1
)

// stateSum totals the per-marginal user counts, which every
// marginal-view codec checks against the report count.
func stateSum(users []int) int {
	var sum int
	for _, u := range users {
		sum += u
	}
	return sum
}

// --- InpRR ---

func (a *inpRRAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindInpRR, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Uint64s(a.ones)
	return e.Bytes(), nil
}

func (a *inpRRAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindInpRR, stateVersion)
	if err != nil {
		return fmt.Errorf("core: InpRR state: %w", err)
	}
	n := d.Count()
	ones := d.Uint64s(a.p.size)
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: InpRR state: %w", err)
	}
	for j, c := range ones {
		if c > uint64(n) {
			return fmt.Errorf("core: InpRR state: cell %d count %d exceeds %d reports", j, c, n)
		}
	}
	a.n, a.ones = n, ones
	return nil
}

// --- InpPS ---

func (a *inpPSAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindInpPS, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Uint64s(a.counts)
	return e.Bytes(), nil
}

func (a *inpPSAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindInpPS, stateVersion)
	if err != nil {
		return fmt.Errorf("core: InpPS state: %w", err)
	}
	n := d.Count()
	counts := d.Uint64s(int(a.p.size))
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: InpPS state: %w", err)
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != uint64(n) {
		return fmt.Errorf("core: InpPS state: cell counts sum to %d, want %d reports", sum, n)
	}
	a.n, a.counts = n, counts
	return nil
}

// --- InpHT ---

func (a *inpHTAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindInpHT, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Int64s(a.sums)
	e.Int64s(a.counts)
	return e.Bytes(), nil
}

func (a *inpHTAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindInpHT, stateVersion)
	if err != nil {
		return fmt.Errorf("core: InpHT state: %w", err)
	}
	n := d.Count()
	sums := d.Int64s(len(a.p.coeffs))
	counts := d.Int64s(len(a.p.coeffs))
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: InpHT state: %w", err)
	}
	var total int64
	for i, c := range counts {
		if c < 0 || sums[i] > c || sums[i] < -c {
			return fmt.Errorf("core: InpHT state: coefficient %d has sum %d over %d reports", i, sums[i], c)
		}
		total += c
	}
	if total != int64(n) {
		return fmt.Errorf("core: InpHT state: coefficient counts sum to %d, want %d reports", total, n)
	}
	a.n, a.sums, a.counts = n, sums, counts
	return nil
}

// --- MargRR ---

func (a *margRRAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindMargRR, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Counts(a.users)
	for _, row := range a.ones {
		e.Uint64s(row)
	}
	return e.Bytes(), nil
}

func (a *margRRAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindMargRR, stateVersion)
	if err != nil {
		return fmt.Errorf("core: MargRR state: %w", err)
	}
	n := d.Count()
	users := d.Counts(len(a.p.idx.masks))
	ones := make([][]uint64, len(a.p.idx.masks))
	for i := range ones {
		ones[i] = d.Uint64s(a.p.cells)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: MargRR state: %w", err)
	}
	if got := stateSum(users); got != n {
		return fmt.Errorf("core: MargRR state: per-marginal users sum to %d, want %d reports", got, n)
	}
	for i, row := range ones {
		for c, v := range row {
			if v > uint64(users[i]) {
				return fmt.Errorf("core: MargRR state: marginal %d cell %d count %d exceeds %d users", i, c, v, users[i])
			}
		}
	}
	a.n, a.users, a.ones = n, users, ones
	return nil
}

// --- MargPS ---

func (a *margPSAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindMargPS, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Counts(a.users)
	for _, row := range a.counts {
		e.Uint64s(row)
	}
	return e.Bytes(), nil
}

func (a *margPSAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindMargPS, stateVersion)
	if err != nil {
		return fmt.Errorf("core: MargPS state: %w", err)
	}
	n := d.Count()
	users := d.Counts(len(a.p.idx.masks))
	counts := make([][]uint64, len(a.p.idx.masks))
	for i := range counts {
		counts[i] = d.Uint64s(int(a.p.cells))
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: MargPS state: %w", err)
	}
	if got := stateSum(users); got != n {
		return fmt.Errorf("core: MargPS state: per-marginal users sum to %d, want %d reports", got, n)
	}
	for i, row := range counts {
		var sum uint64
		for _, v := range row {
			sum += v
		}
		if sum != uint64(users[i]) {
			return fmt.Errorf("core: MargPS state: marginal %d cell counts sum to %d, want %d users", i, sum, users[i])
		}
	}
	a.n, a.users, a.counts = n, users, counts
	return nil
}

// --- MargHT ---

func (a *margHTAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindMargHT, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Counts(a.users)
	for i := range a.sums {
		e.Int64s(a.sums[i])
		e.Int64s(a.counts[i])
	}
	return e.Bytes(), nil
}

func (a *margHTAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindMargHT, stateVersion)
	if err != nil {
		return fmt.Errorf("core: MargHT state: %w", err)
	}
	n := d.Count()
	users := d.Counts(len(a.p.idx.masks))
	sums := make([][]int64, len(a.p.idx.masks))
	counts := make([][]int64, len(a.p.idx.masks))
	for i := range sums {
		sums[i] = d.Int64s(a.p.cells)
		counts[i] = d.Int64s(a.p.cells)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: MargHT state: %w", err)
	}
	if got := stateSum(users); got != n {
		return fmt.Errorf("core: MargHT state: per-marginal users sum to %d, want %d reports", got, n)
	}
	for i := range sums {
		var total int64
		for c, cnt := range counts[i] {
			if cnt < 0 || sums[i][c] > cnt || sums[i][c] < -cnt {
				return fmt.Errorf("core: MargHT state: marginal %d coefficient %d has sum %d over %d reports", i, c, sums[i][c], cnt)
			}
			total += cnt
		}
		if total != int64(users[i]) {
			return fmt.Errorf("core: MargHT state: marginal %d coefficient counts sum to %d, want %d users", i, total, users[i])
		}
	}
	a.n, a.users, a.sums, a.counts = n, users, sums, counts
	return nil
}

// --- ShardedAggregator ---

// MarshalState merges every shard into one sequential snapshot and
// serializes it: the blob is the state of an equivalent sequential
// aggregator, so it restores into sharded and sequential deployments
// alike.
func (s *ShardedAggregator) MarshalState() ([]byte, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.MarshalState()
}

// UnmarshalState loads the blob into shard 0 and resets the remaining
// shards to empty, so the merged view equals the marshaled state. Not
// safe for use concurrently with writers consuming reports.
func (s *ShardedAggregator) UnmarshalState(data []byte) error {
	fresh := s.newShard()
	if err := fresh.UnmarshalState(data); err != nil {
		return err
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.shards[0].agg = fresh
	for i := 1; i < len(s.shards); i++ {
		s.shards[i].agg = s.newShard()
	}
	s.n.Store(int64(fresh.N()))
	s.ver.Add(1)
	for i := range s.shards {
		// Every shard's state was replaced (even the emptied ones), so
		// every per-shard version must move or a delta snapshot would
		// keep serving the pre-restore contribution of an "unchanged"
		// shard.
		s.shards[i].ver++
		s.shards[i].mu.Unlock()
	}
	return nil
}
