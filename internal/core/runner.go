package core

import (
	"fmt"
	"runtime"
	"sync"

	"ldpmarginals/internal/rng"
)

// BatchSimulator is an optional aggregator fast path: consuming a batch
// of records in one step with a distribution identical to perturbing each
// record and consuming the individual reports. InpRR implements it to
// avoid materializing 2^d-bit reports per user.
type BatchSimulator interface {
	SimulateBatch(records []uint64, r *rng.RNG) error
}

// RunResult is the outcome of simulating a protocol over a population.
type RunResult struct {
	// Agg is the merged aggregator, ready for Estimate queries.
	Agg Aggregator
	// TotalBits is the total communication cost of the run, i.e.
	// CommunicationBits() summed over users.
	TotalBits int64
}

// Run simulates the full protocol over the records: every record is
// perturbed by a client with an independent RNG stream and consumed by an
// aggregator. Work is sharded over workers goroutines (GOMAXPROCS when
// workers <= 0) with one aggregator shard each, merged at the end —
// aggregation is associative, so the result is exact.
func Run(p Protocol, records []uint64, seed uint64, workers int) (*RunResult, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("core: no records to run over")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(records) {
		workers = len(records)
	}

	base := rng.New(seed)
	type shard struct {
		agg Aggregator
		err error
	}
	shards := make([]shard, workers)
	rngs := make([]*rng.RNG, workers)
	for i := range rngs {
		rngs[i] = base.Fork()
	}

	var wg sync.WaitGroup
	chunk := (len(records) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(records) {
			hi = len(records)
		}
		if lo >= hi {
			shards[w].agg = p.NewAggregator()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			agg := p.NewAggregator()
			shards[w].agg = agg
			r := rngs[w]
			if batch, ok := agg.(BatchSimulator); ok {
				shards[w].err = batch.SimulateBatch(records[lo:hi], r)
				return
			}
			client := p.NewClient()
			for _, rec := range records[lo:hi] {
				rep, err := client.Perturb(rec, r)
				if err != nil {
					shards[w].err = err
					return
				}
				if err := agg.Consume(rep); err != nil {
					shards[w].err = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	for w := range shards {
		if shards[w].err != nil {
			return nil, fmt.Errorf("core: worker %d: %w", w, shards[w].err)
		}
	}
	out := shards[0].agg
	for w := 1; w < len(shards); w++ {
		if err := out.Merge(shards[w].agg); err != nil {
			return nil, err
		}
	}
	if out.N() != len(records) {
		return nil, fmt.Errorf("core: aggregator consumed %d of %d reports", out.N(), len(records))
	}
	return &RunResult{
		Agg:       out,
		TotalBits: int64(p.CommunicationBits()) * int64(len(records)),
	}, nil
}
