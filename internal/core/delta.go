package core

import (
	"fmt"
)

// Delta snapshots. A materialized-view refresh needs the merged state of
// every shard, but between two refreshes only the shards that ingested
// anything have changed — and aggregation state is integer counters, so
// a shard's new contribution can replace its old one exactly:
//
//	cum -= old copy of shard i;  old copy := shard i;  cum += old copy
//
// SnapshotArena owns that machinery: one private per-shard state copy
// per shard, plus the cumulative aggregator equal to the merge of those
// copies. SnapshotDeltaInto touches only shards whose mutation version
// moved since the arena's last capture, and every buffer is reused
// across captures, so a steady-state refresh with a small delta costs
// O(touched shards × state) and allocates nothing. Because the fold is
// integer arithmetic, the cumulative state is bit-identical to a fresh
// Snapshot of the same shards, no matter how many deltas were folded.

// StateArena is the caller-owned reusable state behind delta snapshots.
// Implementations are NOT safe for concurrent use: an arena belongs to
// one refresh loop (e.g. a view engine, which serializes builds).
type StateArena interface {
	// State returns the cumulative aggregator as of the last
	// SnapshotDeltaInto call. The arena owns it and mutates it on the
	// next capture: callers must finish reading before folding again
	// and must never mutate it themselves.
	State() Aggregator
	// Primed reports whether the arena holds a captured state: false on
	// a fresh arena, after Reset, and after a failed fold (the next
	// capture then re-derives the cumulative aggregator from scratch).
	// Composed arenas layered on top of this one watch Primed to learn
	// when their own folded contributions were dropped by a recapture.
	Primed() bool
	// Reset discards the incremental state, so the next capture
	// re-derives the cumulative aggregator from scratch — the
	// full-rebuild path uses this to re-anchor the linear sums.
	Reset()
}

// stateCopier is optionally implemented by aggregators that can replace
// their state with a deep copy of another's, reusing their own buffers.
type stateCopier interface {
	CopyStateFrom(other Aggregator) error
}

// unmerger is optionally implemented by aggregators that can subtract a
// previously merged contribution — the inverse of Merge over the
// integer counter state.
type unmerger interface {
	Unmerge(other Aggregator) error
}

// supportsDelta reports whether aggregators from this factory can back a
// delta arena (deep copy + exact unmerge).
func supportsDelta(newShard func() Aggregator) bool {
	probe := newShard()
	if _, ok := probe.(stateCopier); !ok {
		return false
	}
	_, ok := probe.(unmerger)
	return ok
}

// shardArena is the StateArena over one ShardedAggregator.
type shardArena struct {
	src    *ShardedAggregator
	vers   []uint64     // per-shard version at last capture
	copies []Aggregator // per-shard state copies at last capture
	cum    Aggregator   // merge of copies
	primed bool
}

// NewSnapshotArena returns a reusable delta-snapshot arena over the
// aggregator, or nil when the protocol's aggregators do not support
// exact delta folding (callers then fall back to full Snapshot calls).
// The arena is owned by the caller and must not be shared across
// goroutines; multiple arenas over one aggregator are independent.
func (s *ShardedAggregator) NewSnapshotArena() StateArena {
	if !supportsDelta(s.newShard) {
		return nil
	}
	a := &shardArena{
		src:    s,
		vers:   make([]uint64, len(s.shards)),
		copies: make([]Aggregator, len(s.shards)),
		cum:    s.newShard(),
	}
	for i := range a.copies {
		a.copies[i] = s.newShard()
	}
	return a
}

func (a *shardArena) State() Aggregator { return a.cum }
func (a *shardArena) Primed() bool      { return a.primed }

func (a *shardArena) Reset() { a.primed = false }

// SnapshotDeltaInto advances the arena to the aggregator's current
// state, copying only shards whose version moved since the arena's last
// capture and folding each changed shard's old and new contribution
// through exact integer unmerge/merge. It returns how many shards were
// folded. On an unprimed (fresh or Reset) arena every shard is captured
// and the cumulative aggregator is re-derived from scratch, making its
// counters — and, because the fold is exact, every later incremental
// capture's counters — bit-identical to Snapshot's.
//
// Shards are locked one at a time, exactly like Snapshot, so ingestion
// stalls for at most one shard's copy. The arena must have been created
// by this aggregator's NewSnapshotArena.
func (s *ShardedAggregator) SnapshotDeltaInto(arena StateArena) (touched int, err error) {
	a, ok := arena.(*shardArena)
	if !ok {
		return 0, fmt.Errorf("core: arena of type %T was not created by a ShardedAggregator", arena)
	}
	if a.src != s {
		return 0, fmt.Errorf("core: arena belongs to a different ShardedAggregator")
	}
	if !a.primed {
		// Cold capture: re-derive cum exactly like Snapshot does — a
		// fresh accumulator merged with each shard in index order — so
		// the cold state is bit-identical to Snapshot's, then keep the
		// per-shard copies for later deltas.
		a.cum = s.newShard()
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			cerr := a.copies[i].(stateCopier).CopyStateFrom(sh.agg)
			a.vers[i] = sh.ver
			sh.mu.Unlock()
			if cerr != nil {
				return touched, fmt.Errorf("core: delta snapshot of shard %d: %w", i, cerr)
			}
			if merr := a.cum.Merge(a.copies[i]); merr != nil {
				return touched, fmt.Errorf("core: delta snapshot of shard %d: %w", i, merr)
			}
			touched++
		}
		a.primed = true
		return touched, nil
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.ver == a.vers[i] {
			sh.mu.Unlock()
			continue
		}
		// Replace this shard's contribution: subtract the old copy from
		// cum, refresh the copy under the shard lock, and add it back.
		// All integer counter arithmetic — exact in any order.
		if uerr := a.cum.(unmerger).Unmerge(a.copies[i]); uerr != nil {
			sh.mu.Unlock()
			a.primed = false
			return touched, fmt.Errorf("core: delta snapshot of shard %d: %w", i, uerr)
		}
		cerr := a.copies[i].(stateCopier).CopyStateFrom(sh.agg)
		a.vers[i] = sh.ver
		sh.mu.Unlock()
		if cerr != nil {
			a.primed = false
			return touched, fmt.Errorf("core: delta snapshot of shard %d: %w", i, cerr)
		}
		if merr := a.cum.Merge(a.copies[i]); merr != nil {
			a.primed = false
			return touched, fmt.Errorf("core: delta snapshot of shard %d: %w", i, merr)
		}
		touched++
	}
	return touched, nil
}

// MergeAggregators folds src into dst through the canonical Merge path.
// It exists so packages composing delta arenas (e.g. a coordinator's
// fleet) can fold foreign contributions into an arena's cumulative
// state; UnmergeAggregators is the exact inverse. dst must support
// unmerging for the pair to be usable in a delta fold.
func MergeAggregators(dst, src Aggregator) error { return dst.Merge(src) }

// UnmergeAggregators subtracts a previously merged contribution from
// dst. It fails when dst's protocol does not support exact unmerging.
func UnmergeAggregators(dst, src Aggregator) error {
	u, ok := dst.(unmerger)
	if !ok {
		return fmt.Errorf("core: %T does not support unmerging", dst)
	}
	return u.Unmerge(src)
}

// SupportsDeltaSnapshots reports whether the aggregator's protocol can
// back delta arenas (NewSnapshotArena returns non-nil).
func (s *ShardedAggregator) SupportsDeltaSnapshots() bool {
	return supportsDelta(s.newShard)
}
