package consistency

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// enforceReference is a frozen copy of the pre-plan Enforce algorithm,
// kept verbatim so the plan-based sweep is pinned bit-identical to it.
func enforceReference(tables []*marginal.Table, weights []float64, opts Options) error {
	opts = opts.withDefaults()
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		if weights[i] < 0 {
			return 0
		}
		return weights[i]
	}
	shared := map[uint64][]int{}
	for i, a := range tables {
		for j := i + 1; j < len(tables); j++ {
			common := a.Beta & tables[j].Beta
			if common == 0 {
				continue
			}
			for _, sub := range bitops.SubMasks(common) {
				if sub == 0 {
					continue
				}
				if shared[sub] == nil {
					for idx, t := range tables {
						if bitops.IsSubset(sub, t.Beta) {
							shared[sub] = append(shared[sub], idx)
						}
					}
				}
			}
		}
	}
	if len(shared) == 0 {
		return nil
	}
	order := make([]uint64, 0, len(shared))
	for sub := range shared {
		order = append(order, sub)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for round := 0; round < opts.Rounds; round++ {
		for _, sub := range order {
			members := shared[sub]
			consensus, err := marginal.New(sub)
			if err != nil {
				return err
			}
			var totalW float64
			for _, idx := range members {
				imp, err := tables[idx].MarginalizeTo(sub)
				if err != nil {
					return err
				}
				imp.Scale(w(idx))
				if err := consensus.Add(imp); err != nil {
					return err
				}
				totalW += w(idx)
			}
			if totalW == 0 {
				continue
			}
			consensus.Scale(1 / totalW)
			for _, idx := range members {
				t := tables[idx]
				imp, err := t.MarginalizeTo(sub)
				if err != nil {
					return err
				}
				groupSize := float64(len(t.Cells) / len(consensus.Cells))
				for c := range t.Cells {
					full := bitops.Expand(uint64(c), t.Beta)
					sc := bitops.Compress(full, sub)
					t.Cells[c] += (consensus.Cells[sc] - imp.Cells[sc]) / groupSize
				}
			}
		}
	}
	if opts.Project {
		for _, t := range tables {
			t.ProjectToSimplex()
		}
	}
	return nil
}

// randomCollection builds the full C(d,k) collection with noisy
// (unbiased-estimate-shaped, possibly negative) cells and per-table
// weights.
func randomCollection(t *testing.T, d, k int, seed int64) ([]*marginal.Table, []*marginal.Table, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	masks := bitops.MasksWithExactlyK(d, k)
	a := make([]*marginal.Table, len(masks))
	b := make([]*marginal.Table, len(masks))
	weights := make([]float64, len(masks))
	for i, m := range masks {
		ta, err := marginal.New(m)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ta.Cells {
			ta.Cells[c] = r.Float64()*1.2 - 0.1
		}
		a[i] = ta
		b[i] = ta.Clone()
		weights[i] = float64(r.Intn(1000))
	}
	return a, b, weights
}

// TestPlanEnforceBitIdenticalToReference pins the plan-based sweep to
// the frozen legacy algorithm: same inputs, bit-identical outputs, with
// and without weights, across several (d, k) shapes, and on plan reuse.
func TestPlanEnforceBitIdenticalToReference(t *testing.T) {
	for _, shape := range []struct{ d, k int }{{4, 2}, {6, 3}, {8, 2}, {5, 4}} {
		for _, weighted := range []bool{false, true} {
			got, want, weights := randomCollection(t, shape.d, shape.k, int64(7*shape.d+int(shape.k)))
			if !weighted {
				weights = nil
			}
			betas := make([]uint64, len(got))
			for i, tab := range got {
				betas[i] = tab.Beta
			}
			plan, err := NewPlan(betas)
			if err != nil {
				t.Fatal(err)
			}
			// Two plan sweeps over independent clones: the second reuses
			// the pooled scratch, which must not change results.
			got2 := make([]*marginal.Table, len(got))
			for i := range got {
				got2[i] = got[i].Clone()
			}
			if err := plan.Enforce(got, weights, Options{Rounds: 3}); err != nil {
				t.Fatal(err)
			}
			if err := plan.Enforce(got2, weights, Options{Rounds: 3}); err != nil {
				t.Fatal(err)
			}
			if err := enforceReference(want, weights, Options{Rounds: 3}); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				for c := range got[i].Cells {
					if math.Float64bits(got[i].Cells[c]) != math.Float64bits(want[i].Cells[c]) {
						t.Fatalf("d=%d k=%d weighted=%v: table %b cell %d: plan %v != reference %v",
							shape.d, shape.k, weighted, got[i].Beta, c, got[i].Cells[c], want[i].Cells[c])
					}
					if math.Float64bits(got2[i].Cells[c]) != math.Float64bits(want[i].Cells[c]) {
						t.Fatalf("d=%d k=%d weighted=%v: table %b cell %d: plan reuse diverged", shape.d, shape.k, weighted, got[i].Beta, c)
					}
				}
			}
		}
	}
}

// TestPlanEnforceValidation covers the mismatch errors unique to the
// plan path.
func TestPlanEnforceValidation(t *testing.T) {
	plan, err := NewPlan([]uint64{0b011, 0b110})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := marginal.New(0b011)
	t2, _ := marginal.New(0b101) // wrong mask
	if err := plan.Enforce([]*marginal.Table{t1, t2}, nil, Options{}); err == nil {
		t.Fatal("plan accepted a table over the wrong mask")
	}
	if err := plan.Enforce([]*marginal.Table{t1}, nil, Options{}); err == nil {
		t.Fatal("plan accepted a short table list")
	}
	if _, err := NewPlan([]uint64{0b011, 0b011}); err == nil {
		t.Fatal("NewPlan accepted duplicate masks")
	}
}
