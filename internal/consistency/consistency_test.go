package consistency

import (
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
)

func TestEnforceValidation(t *testing.T) {
	if err := Enforce(nil, nil, Options{}); err == nil {
		t.Error("no tables should error")
	}
	a, _ := marginal.Uniform(0b11)
	b, _ := marginal.Uniform(0b11)
	if err := Enforce([]*marginal.Table{a, b}, nil, Options{}); err == nil {
		t.Error("duplicate masks should error")
	}
	if err := Enforce([]*marginal.Table{a, nil}, nil, Options{}); err == nil {
		t.Error("nil table should error")
	}
	c, _ := marginal.Uniform(0b101)
	if err := Enforce([]*marginal.Table{a, c}, []float64{1}, Options{}); err == nil {
		t.Error("weight count mismatch should error")
	}
}

func TestEnforceMakesTablesConsistent(t *testing.T) {
	// Two overlapping 2-way tables with deliberately disagreeing
	// implied 1-way marginals for the shared attribute 0.
	ab, _ := marginal.FromCells(0b011, []float64{0.4, 0.1, 0.3, 0.2}) // P(a=1) = 0.3
	ac, _ := marginal.FromCells(0b101, []float64{0.2, 0.3, 0.2, 0.3}) // P(a=1) = 0.6
	tables := []*marginal.Table{ab, ac}
	before, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if before < 0.2 {
		t.Fatalf("setup should disagree, got %v", before)
	}
	if err := Enforce(tables, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	after, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if after > 1e-9 {
		t.Errorf("disagreement after enforcement = %v, want ~0", after)
	}
	// Total mass preserved.
	for _, tab := range tables {
		if math.Abs(tab.Sum()-1) > 1e-9 {
			t.Errorf("mass changed: %v", tab.Sum())
		}
	}
}

func TestEnforceConsensusIsWeighted(t *testing.T) {
	ab, _ := marginal.FromCells(0b011, []float64{0.5, 0.0, 0.5, 0.0}) // P(a=1) = 0
	ac, _ := marginal.FromCells(0b101, []float64{0.0, 0.5, 0.0, 0.5}) // P(a=1) = 1
	tables := []*marginal.Table{ab, ac}
	// All weight on the second table: consensus P(a=1) = 1.
	if err := Enforce(tables, []float64{0, 1}, Options{Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	sub, err := tables[0].MarginalizeTo(0b001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sub.Cells[1]-1) > 1e-9 {
		t.Errorf("weighted consensus ignored: P(a=1) = %v, want 1", sub.Cells[1])
	}
}

// TestEnforceWeightedOverlappingTables drives the weighted-averaging
// path the way a marginal-view deployment does: several overlapping
// tables with very different evidence (user counts), non-uniform
// weights. Enforcement must drive MaxDisagreement to ~0 while
// preserving each table's mass, and the consensus must sit closer to
// the heavily-weighted tables' evidence than to the lightly-weighted
// one's.
func TestEnforceWeightedOverlappingTables(t *testing.T) {
	// Three pairwise-overlapping 2-way tables over attributes {0,1},
	// {0,2}, {1,2}. ab and bc carry most of the evidence and imply
	// P(a1=1) = 0.30; ac is a tiny sample claiming P(a1=1) = 0.90.
	ab, _ := marginal.FromCells(0b011, []float64{0.40, 0.30, 0.10, 0.20}) // P(a0=1)=0.5, P(a1=1)=0.3
	ac, _ := marginal.FromCells(0b101, []float64{0.05, 0.05, 0.45, 0.45}) // P(a0=1)=0.5, P(a2=1)=0.9
	bc, _ := marginal.FromCells(0b110, []float64{0.60, 0.10, 0.20, 0.10}) // P(a1=1)=0.3, P(a2=1)=0.3
	tables := []*marginal.Table{ab, ac, bc}
	weights := []float64{10000, 100, 10000}

	before, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if before < 0.5 {
		t.Fatalf("setup should disagree badly on a2, got %v", before)
	}
	if err := Enforce(tables, weights, Options{Rounds: 50}); err != nil {
		t.Fatal(err)
	}
	after, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if after > 1e-6 {
		t.Errorf("disagreement after weighted enforcement = %v, want ~0", after)
	}
	for i, tab := range tables {
		if math.Abs(tab.Sum()-1) > 1e-9 {
			t.Errorf("table %d mass changed to %v", i, tab.Sum())
		}
	}
	// The a2 consensus must land near the heavy table's 0.3, not the
	// light table's 0.9 (weighted mean is ~0.306).
	sub, err := tables[2].MarginalizeTo(0b100)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cells[1] > 0.4 {
		t.Errorf("P(a2=1) consensus %v ignores the 100:1 weight ratio", sub.Cells[1])
	}
}

// TestEnforceIsDeterministic runs the sweep repeatedly over identical
// inputs with enough overlap structure to exercise many shared
// sub-marginals; every cell must come out bit-identical. The
// materialized-view engine relies on this for reproducible epochs.
func TestEnforceIsDeterministic(t *testing.T) {
	build := func() []*marginal.Table {
		var tables []*marginal.Table
		for i, beta := range []uint64{0b0111, 0b1011, 0b1101, 0b1110} {
			cells := make([]float64, 8)
			for c := range cells {
				cells[c] = float64((i*7+c*3)%11) / 44.0
			}
			tab, err := marginal.FromCells(beta, cells)
			if err != nil {
				t.Fatal(err)
			}
			tables = append(tables, tab)
		}
		return tables
	}
	weights := []float64{1, 2, 3, 4}
	ref := build()
	if err := Enforce(ref, weights, Options{Rounds: 4}); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		got := build()
		if err := Enforce(got, weights, Options{Rounds: 4}); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for c := range ref[i].Cells {
				if math.Float64bits(got[i].Cells[c]) != math.Float64bits(ref[i].Cells[c]) {
					t.Fatalf("trial %d: table %d cell %d differs: %v vs %v",
						trial, i, c, got[i].Cells[c], ref[i].Cells[c])
				}
			}
		}
	}
}

func TestEnforceLeavesExactTablesAlone(t *testing.T) {
	// Tables computed from the same data are already consistent: the
	// sweep must be (numerically) a no-op.
	ds := dataset.NewTaxi(20000, 1)
	var tables []*marginal.Table
	var orig [][]float64
	for _, beta := range []uint64{0b011, 0b101, 0b110} {
		tab, err := ds.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab)
		orig = append(orig, append([]float64(nil), tab.Cells...))
	}
	if err := Enforce(tables, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	for i, tab := range tables {
		for c := range tab.Cells {
			if math.Abs(tab.Cells[c]-orig[i][c]) > 1e-9 {
				t.Fatalf("exact table %d changed at cell %d", i, c)
			}
		}
	}
}

func TestEnforceOnLDPEstimatesImprovesCoherence(t *testing.T) {
	ds := dataset.NewTaxi(100000, 2)
	p, err := core.New(core.MargPS, core.Config{D: ds.D, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, ds.Records, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	betas := []uint64{0b00000011, 0b00000101, 0b00000110, 0b00001001}
	var tables []*marginal.Table
	for _, beta := range betas {
		tab, err := run.Agg.Estimate(beta)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab)
	}
	before, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if before <= 0 {
		t.Fatal("independently-noised tables should disagree")
	}
	if err := Enforce(tables, nil, Options{Rounds: 5}); err != nil {
		t.Fatal(err)
	}
	after, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if after > before/10 {
		t.Errorf("disagreement %v -> %v; expected at least 10x reduction", before, after)
	}
	// Accuracy must not degrade materially: each adjusted table stays
	// close to the exact marginal.
	for i, beta := range betas {
		exact, err := ds.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := tables[i].TVDistance(exact)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 0.1 {
			t.Errorf("table %b TV after enforcement = %v", beta, tv)
		}
	}
}

func TestEnforceWithProjection(t *testing.T) {
	ab, _ := marginal.FromCells(0b011, []float64{0.6, -0.1, 0.4, 0.1})
	ac, _ := marginal.FromCells(0b101, []float64{0.3, 0.3, 0.2, 0.2})
	tables := []*marginal.Table{ab, ac}
	if err := Enforce(tables, nil, Options{Project: true}); err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		var sum float64
		for _, c := range tab.Cells {
			if c < -1e-12 {
				t.Errorf("negative cell after projection: %v", tab.Cells)
			}
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("mass after projection = %v", sum)
		}
	}
}

func TestEnforceDisjointTablesNoOp(t *testing.T) {
	a, _ := marginal.FromCells(0b0011, []float64{0.7, 0.1, 0.1, 0.1})
	b, _ := marginal.FromCells(0b1100, []float64{0.1, 0.1, 0.1, 0.7})
	orig := append([]float64(nil), a.Cells...)
	if err := Enforce([]*marginal.Table{a, b}, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	for c := range orig {
		if a.Cells[c] != orig[c] {
			t.Error("disjoint tables should be untouched")
		}
	}
}

func TestMaxDisagreementZeroForSingle(t *testing.T) {
	a, _ := marginal.Uniform(0b11)
	d, err := MaxDisagreement([]*marginal.Table{a})
	if err != nil || d != 0 {
		t.Errorf("single table disagreement = %v, %v", d, err)
	}
}

func TestInpHTIsAutomaticallyConsistent(t *testing.T) {
	// InpHT reconstructs every marginal from one shared coefficient
	// pool, so overlapping tables agree exactly without any
	// post-processing — a structural advantage over the marginal-view
	// protocols, which need Enforce.
	ds := dataset.NewTaxi(50000, 9)
	p, err := core.New(core.InpHT, core.Config{D: ds.D, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, ds.Records, 21, 4)
	if err != nil {
		t.Fatal(err)
	}
	var tables []*marginal.Table
	for _, beta := range []uint64{0b011, 0b101, 0b110, 0b1001} {
		tab, err := run.Agg.Estimate(beta)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab)
	}
	disagreement, err := MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if disagreement > 1e-9 {
		t.Errorf("InpHT tables should be consistent by construction, got %v", disagreement)
	}
}
