// Package consistency post-processes a collection of estimated marginal
// tables so that overlapping marginals agree — the "consistency"
// property Barak et al. pursue in the centralized model, applied here to
// LDP estimates. Independently-noised tables generally disagree on
// shared sub-marginals (e.g. the 1-way marginal of attribute a implied
// by C_{ab} differs from the one implied by C_{ac}); analysts and
// downstream model fitters expect a single coherent answer.
//
// The algorithm is iterative proportional-style additive correction:
// for every shared sub-marginal, compute the precision-weighted
// consensus across all tables containing it, then shift each table's
// cells uniformly within each sub-cell group to match the consensus.
// The shift preserves each table's total mass and its internal
// higher-order structure; a few sweeps converge to mutual agreement.
// Optionally the result is projected to the probability simplex.
package consistency

import (
	"fmt"
	"sort"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// Options controls the enforcement sweep.
type Options struct {
	// Rounds is the number of full sweeps over shared sub-marginals
	// (default 3; one round suffices when tables share only one
	// sub-marginal each).
	Rounds int
	// Project projects every table to the probability simplex after the
	// sweeps, producing genuine distributions.
	Project bool
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	return o
}

// Enforce adjusts the tables in place so shared sub-marginals agree. All
// tables must be over distinct attribute masks; weights (one per table,
// or nil for uniform) set the relative trust in each table's evidence,
// e.g. per-marginal user counts from a marginal-view protocol.
func Enforce(tables []*marginal.Table, weights []float64, opts Options) error {
	opts = opts.withDefaults()
	if len(tables) == 0 {
		return fmt.Errorf("consistency: no tables")
	}
	if weights != nil && len(weights) != len(tables) {
		return fmt.Errorf("consistency: %d weights for %d tables", len(weights), len(tables))
	}
	seen := map[uint64]bool{}
	for _, t := range tables {
		if t == nil {
			return fmt.Errorf("consistency: nil table")
		}
		if seen[t.Beta] {
			return fmt.Errorf("consistency: duplicate marginal %b", t.Beta)
		}
		seen[t.Beta] = true
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		if weights[i] < 0 {
			return 0
		}
		return weights[i]
	}

	// Collect every sub-marginal shared by at least two tables.
	shared := map[uint64][]int{}
	for i, a := range tables {
		for j := i + 1; j < len(tables); j++ {
			common := a.Beta & tables[j].Beta
			if common == 0 {
				continue
			}
			for _, sub := range bitops.SubMasks(common) {
				if sub == 0 {
					continue
				}
				if shared[sub] == nil {
					for idx, t := range tables {
						if bitops.IsSubset(sub, t.Beta) {
							shared[sub] = append(shared[sub], idx)
						}
					}
				}
			}
		}
	}
	if len(shared) == 0 {
		return nil // nothing overlaps; vacuously consistent
	}
	// Sweep shared sub-marginals in increasing mask order. Within a round
	// the corrections are order-dependent, so a fixed order makes Enforce
	// deterministic: equal inputs produce bit-identical outputs, which the
	// materialized-view layer relies on for reproducible epoch rebuilds.
	order := make([]uint64, 0, len(shared))
	for sub := range shared {
		order = append(order, sub)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for round := 0; round < opts.Rounds; round++ {
		for _, sub := range order {
			members := shared[sub]
			// Weighted consensus of the implied sub-marginal.
			consensus, err := marginal.New(sub)
			if err != nil {
				return err
			}
			var totalW float64
			for _, idx := range members {
				imp, err := tables[idx].MarginalizeTo(sub)
				if err != nil {
					return err
				}
				imp.Scale(w(idx))
				if err := consensus.Add(imp); err != nil {
					return err
				}
				totalW += w(idx)
			}
			if totalW == 0 {
				continue
			}
			consensus.Scale(1 / totalW)
			// Shift each member's cells so its implied sub-marginal
			// equals the consensus: spread each sub-cell's deficit
			// uniformly over the table cells mapping to it.
			for _, idx := range members {
				t := tables[idx]
				imp, err := t.MarginalizeTo(sub)
				if err != nil {
					return err
				}
				groupSize := float64(len(t.Cells) / len(consensus.Cells))
				for c := range t.Cells {
					full := bitops.Expand(uint64(c), t.Beta)
					sc := bitops.Compress(full, sub)
					t.Cells[c] += (consensus.Cells[sc] - imp.Cells[sc]) / groupSize
				}
			}
		}
	}
	if opts.Project {
		for _, t := range tables {
			t.ProjectToSimplex()
		}
	}
	return nil
}

// MaxDisagreement measures the largest L-infinity gap between the
// sub-marginals implied by any two tables on any shared attribute set —
// 0 means fully consistent. Useful in tests and as a diagnostic.
func MaxDisagreement(tables []*marginal.Table) (float64, error) {
	var worst float64
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			common := tables[i].Beta & tables[j].Beta
			if common == 0 {
				continue
			}
			for _, sub := range bitops.SubMasks(common) {
				if sub == 0 {
					continue
				}
				a, err := tables[i].MarginalizeTo(sub)
				if err != nil {
					return 0, err
				}
				b, err := tables[j].MarginalizeTo(sub)
				if err != nil {
					return 0, err
				}
				for c := range a.Cells {
					d := a.Cells[c] - b.Cells[c]
					if d < 0 {
						d = -d
					}
					if d > worst {
						worst = d
					}
				}
			}
		}
	}
	return worst, nil
}
