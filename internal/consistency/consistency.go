// Package consistency post-processes a collection of estimated marginal
// tables so that overlapping marginals agree — the "consistency"
// property Barak et al. pursue in the centralized model, applied here to
// LDP estimates. Independently-noised tables generally disagree on
// shared sub-marginals (e.g. the 1-way marginal of attribute a implied
// by C_{ab} differs from the one implied by C_{ac}); analysts and
// downstream model fitters expect a single coherent answer.
//
// The algorithm is iterative proportional-style additive correction:
// for every shared sub-marginal, compute the precision-weighted
// consensus across all tables containing it, then shift each table's
// cells uniformly within each sub-cell group to match the consensus.
// The shift preserves each table's total mass and its internal
// higher-order structure; a few sweeps converge to mutual agreement.
// Optionally the result is projected to the probability simplex.
package consistency

import (
	"fmt"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// Options controls the enforcement sweep.
type Options struct {
	// Rounds is the number of full sweeps over shared sub-marginals
	// (default 3; one round suffices when tables share only one
	// sub-marginal each).
	Rounds int
	// Project projects every table to the probability simplex after the
	// sweeps, producing genuine distributions.
	Project bool
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	return o
}

// Enforce adjusts the tables in place so shared sub-marginals agree. All
// tables must be over distinct attribute masks; weights (one per table,
// or nil for uniform) set the relative trust in each table's evidence,
// e.g. per-marginal user counts from a marginal-view protocol.
//
// Enforce derives the overlap structure from scratch on every call.
// Callers that sweep the same collection repeatedly (the materialized-
// view refresh loop) build the structure once with NewPlan and call
// Plan.Enforce, which is bit-identical and allocation-free; the sweep
// order is a fixed function of the masks either way, so equal inputs
// produce bit-identical outputs — which the view layer relies on for
// reproducible epoch rebuilds.
func Enforce(tables []*marginal.Table, weights []float64, opts Options) error {
	if len(tables) == 0 {
		return fmt.Errorf("consistency: no tables")
	}
	betas := make([]uint64, len(tables))
	for i, t := range tables {
		if t == nil {
			return fmt.Errorf("consistency: nil table")
		}
		betas[i] = t.Beta
	}
	plan, err := NewPlan(betas)
	if err != nil {
		return err
	}
	return plan.Enforce(tables, weights, opts)
}

// MaxDisagreement measures the largest L-infinity gap between the
// sub-marginals implied by any two tables on any shared attribute set —
// 0 means fully consistent. Useful in tests and as a diagnostic.
func MaxDisagreement(tables []*marginal.Table) (float64, error) {
	var worst float64
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			common := tables[i].Beta & tables[j].Beta
			if common == 0 {
				continue
			}
			for _, sub := range bitops.SubMasks(common) {
				if sub == 0 {
					continue
				}
				a, err := tables[i].MarginalizeTo(sub)
				if err != nil {
					return 0, err
				}
				b, err := tables[j].MarginalizeTo(sub)
				if err != nil {
					return 0, err
				}
				for c := range a.Cells {
					d := a.Cells[c] - b.Cells[c]
					if d < 0 {
						d = -d
					}
					if d > worst {
						worst = d
					}
				}
			}
		}
	}
	return worst, nil
}
