package consistency

import (
	"fmt"
	"sort"
	"sync"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// Plan is the data-independent structure of one Enforce sweep,
// precomputed once per table collection: which sub-marginals are shared,
// which tables contain each, and the cell-to-subcell index map of every
// (table, sub-marginal) pair. The collection of a marginal-release
// deployment never changes across epochs, so an epoch refresh reuses one
// Plan for the life of the process instead of re-deriving the pairwise
// overlap structure (O(T^2) submask enumeration) and re-allocating
// thousands of tiny marginalization tables every build.
//
// A Plan is immutable after construction and safe for concurrent use;
// Enforce's per-call scratch comes from an internal pool, so the
// steady-state sweep allocates nothing. Plan.Enforce is arithmetic-
// identical to the package-level Enforce (which now builds a throwaway
// Plan): same sweep order, same summation order, bit-identical results.
type Plan struct {
	betas []uint64 // table masks, in table order

	order   []uint64  // shared sub-marginals, ascending mask order
	subSize []int     // per sub: 2^|sub|
	members [][]int   // per sub: indices of tables containing it
	idx     [][][]int // per sub, per member: table cell -> sub cell
	group   [][]float64

	maxSub  int // largest shared sub-marginal cell count
	scratch sync.Pool
}

// NewPlan precomputes the enforcement structure for tables over the
// given masks (in table order). All masks must be distinct.
func NewPlan(betas []uint64) (*Plan, error) {
	p := &Plan{betas: append([]uint64(nil), betas...)}
	seen := map[uint64]bool{}
	for _, b := range betas {
		if seen[b] {
			return nil, fmt.Errorf("consistency: duplicate marginal %b", b)
		}
		seen[b] = true
	}
	// Collect every sub-marginal shared by at least two tables — the
	// same pairwise walk Enforce always did, done once.
	shared := map[uint64][]int{}
	for i, a := range betas {
		for j := i + 1; j < len(betas); j++ {
			common := a & betas[j]
			if common == 0 {
				continue
			}
			for _, sub := range bitops.SubMasks(common) {
				if sub == 0 {
					continue
				}
				if shared[sub] == nil {
					for idx, t := range betas {
						if bitops.IsSubset(sub, t) {
							shared[sub] = append(shared[sub], idx)
						}
					}
				}
			}
		}
	}
	p.order = make([]uint64, 0, len(shared))
	for sub := range shared {
		p.order = append(p.order, sub)
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })

	p.subSize = make([]int, len(p.order))
	p.members = make([][]int, len(p.order))
	p.idx = make([][][]int, len(p.order))
	p.group = make([][]float64, len(p.order))
	for si, sub := range p.order {
		size := 1 << uint(bitops.OnesCount(sub))
		p.subSize[si] = size
		if size > p.maxSub {
			p.maxSub = size
		}
		mem := shared[sub]
		p.members[si] = mem
		p.idx[si] = make([][]int, len(mem))
		p.group[si] = make([]float64, len(mem))
		for mi, m := range mem {
			cells := 1 << uint(bitops.OnesCount(betas[m]))
			mp := make([]int, cells)
			for c := 0; c < cells; c++ {
				full := bitops.Expand(uint64(c), betas[m])
				mp[c] = int(bitops.Compress(full, sub))
			}
			p.idx[si][mi] = mp
			p.group[si][mi] = float64(cells / size)
		}
	}
	maxSub := p.maxSub
	p.scratch.New = func() any {
		return &enforceScratch{cons: make([]float64, maxSub), imp: make([]float64, maxSub)}
	}
	return p, nil
}

type enforceScratch struct{ cons, imp []float64 }

// Enforce adjusts the tables in place so shared sub-marginals agree,
// exactly like the package-level Enforce but over the precomputed
// structure and pooled scratch. tables must match the plan's masks in
// order; weights (one per table, or nil for uniform) set the relative
// trust in each table's evidence.
func (p *Plan) Enforce(tables []*marginal.Table, weights []float64, opts Options) error {
	opts = opts.withDefaults()
	if len(tables) != len(p.betas) {
		return fmt.Errorf("consistency: %d tables for a plan over %d", len(tables), len(p.betas))
	}
	if weights != nil && len(weights) != len(tables) {
		return fmt.Errorf("consistency: %d weights for %d tables", len(weights), len(tables))
	}
	for i, t := range tables {
		if t == nil {
			return fmt.Errorf("consistency: nil table")
		}
		if t.Beta != p.betas[i] {
			return fmt.Errorf("consistency: table %d is over %b, plan expects %b", i, t.Beta, p.betas[i])
		}
	}
	if len(p.order) == 0 {
		return nil // nothing overlaps; vacuously consistent
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		if weights[i] < 0 {
			return 0
		}
		return weights[i]
	}
	sc := p.scratch.Get().(*enforceScratch)
	defer p.scratch.Put(sc)
	for round := 0; round < opts.Rounds; round++ {
		for si := range p.order {
			members := p.members[si]
			cons := sc.cons[:p.subSize[si]]
			for c := range cons {
				cons[c] = 0
			}
			var totalW float64
			for mi, m := range members {
				imp := sc.imp[:p.subSize[si]]
				for c := range imp {
					imp[c] = 0
				}
				mp := p.idx[si][mi]
				for c, v := range tables[m].Cells {
					imp[mp[c]] += v
				}
				wm := w(m)
				for c := range cons {
					// Two statements, not cons[c] += imp[c]*wm: the
					// compiler may fuse a*b+c into one FMA, which would
					// round differently from the legacy Scale-then-Add
					// and break bit-identity with Enforce.
					v := imp[c] * wm
					cons[c] += v
				}
				totalW += wm
			}
			if totalW == 0 {
				continue
			}
			inv := 1 / totalW
			for c := range cons {
				cons[c] *= inv
			}
			// Shift each member's cells so its implied sub-marginal
			// equals the consensus: spread each sub-cell's deficit
			// uniformly over the table cells mapping to it.
			for mi, m := range members {
				imp := sc.imp[:p.subSize[si]]
				for c := range imp {
					imp[c] = 0
				}
				mp := p.idx[si][mi]
				cells := tables[m].Cells
				for c, v := range cells {
					imp[mp[c]] += v
				}
				group := p.group[si][mi]
				for c := range cells {
					cells[c] += (cons[mp[c]] - imp[mp[c]]) / group
				}
			}
		}
	}
	if opts.Project {
		for _, t := range tables {
			t.ProjectToSimplex()
		}
	}
	return nil
}
