package window

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
)

func windowTestConfig() core.Config {
	return core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
}

func windowReports(tb testing.TB, p core.Protocol, n int, seed uint64) []core.Report {
	tb.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]core.Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%(1<<uint(p.Config().D)), r)
		if err != nil {
			tb.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

func marshal(tb testing.TB, a core.Aggregator) []byte {
	tb.Helper()
	b, err := a.MarshalState()
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

var testStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestWindowAllBucketsBitIdentical is the continual-release exactness
// pin for every protocol: a window still covering all of its buckets —
// through rotations, both the Snapshot path and the delta-fold arena
// path — is byte-identical to a single cumulative aggregator fed the
// same reports.
func TestWindowAllBucketsBitIdentical(t *testing.T) {
	for _, kind := range core.AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := core.New(kind, windowTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRing(p, Options{
				Window: 10 * time.Minute,
				Bucket: time.Minute,
				Shards: 3,
				Start:  testStart,
			})
			if err != nil {
				t.Fatal(err)
			}
			arena := r.NewSnapshotArena()
			if arena == nil {
				t.Fatal("no snapshot arena for a core protocol")
			}
			direct := p.NewAggregator()
			reps := windowReports(t, p, 1200, uint64(kind)+7)
			now := testStart
			for chunk := 0; chunk < 4; chunk++ {
				part := reps[chunk*300 : (chunk+1)*300]
				if err := r.ConsumeBatch(part); err != nil {
					t.Fatal(err)
				}
				if err := core.ConsumeAll(direct, part); err != nil {
					t.Fatal(err)
				}
				now = now.Add(time.Minute)
				if _, _, err := r.Advance(now); err != nil {
					t.Fatal(err)
				}
				snap, err := r.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(marshal(t, snap), marshal(t, direct)) {
					t.Fatalf("%s: window snapshot diverges from cumulative after chunk %d", kind, chunk)
				}
				if _, err := r.SnapshotDeltaInto(arena); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(marshal(t, arena.State()), marshal(t, direct)) {
					t.Fatalf("%s: arena state diverges from cumulative after chunk %d", kind, chunk)
				}
				if r.N() != direct.N() {
					t.Fatalf("%s: window N %d, cumulative N %d", kind, r.N(), direct.N())
				}
			}
			st := r.Status()
			if st.Expired != 0 || st.SealedBuckets != 4 {
				t.Fatalf("all-buckets window expired state: %+v", st)
			}
		})
	}
}

// TestWindowExpiryRetiresBuckets pins the sliding semantics: once a
// bucket leaves the window, the state equals — byte for byte — a
// cumulative aggregator over only the surviving buckets' reports.
func TestWindowExpiryRetiresBuckets(t *testing.T) {
	p, err := core.New(core.InpHT, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(p, Options{
		Window: 3 * time.Minute,
		Bucket: time.Minute,
		Shards: 2,
		Start:  testStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	chunks := [][]core.Report{
		windowReports(t, p, 200, 61),
		windowReports(t, p, 250, 62),
		windowReports(t, p, 300, 63),
	}
	now := testStart
	for _, c := range chunks {
		if err := r.ConsumeBatch(c); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Minute)
		if _, _, err := r.Advance(now); err != nil {
			t.Fatal(err)
		}
	}
	// Three rotations over a three-bucket window: the first chunk's
	// bucket has slid out.
	want := p.NewAggregator()
	for _, c := range chunks[1:] {
		if err := core.ConsumeAll(want, c); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, snap), marshal(t, want)) {
		t.Fatal("window after expiry diverges from the surviving buckets' cumulative state")
	}
	if r.N() != want.N() {
		t.Fatalf("window N %d, want %d", r.N(), want.N())
	}
	st := r.Status()
	if st.Expired != 1 || st.SealedBuckets != 2 {
		t.Fatalf("status after one expiry: %+v", st)
	}
	// Let the rest of the window turn over with no ingestion: the
	// window drains to empty, equal to a fresh aggregator.
	if _, _, err := r.Advance(testStart.Add(6 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	snap, err = r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, snap), marshal(t, p.NewAggregator())) || r.N() != 0 {
		t.Fatalf("drained window not empty: n=%d", r.N())
	}
	// An Advance that overshoots the whole window resets wholesale.
	if err := r.ConsumeBatch(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Advance(testStart.Add(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if r.N() != 0 {
		t.Fatalf("overshoot advance left n=%d", r.N())
	}
}

// TestWindowDeltaFoldCost pins the tentpole's cost model: after the
// arena is primed, retiring a bucket is a constant number of folds —
// one Unmerge for the expired bucket, one Merge for the newly sealed
// one, one refold of the live bucket — never a rebuild over the whole
// window, and an idle fold touches nothing.
func TestWindowDeltaFoldCost(t *testing.T) {
	p, err := core.New(core.MargPS, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(p, Options{
		Window: 2 * time.Minute,
		Bucket: time.Minute,
		Start:  testStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	arena := r.NewSnapshotArena()
	now := testStart
	for round := 0; round < 6; round++ {
		if err := r.ConsumeBatch(windowReports(t, p, 100, uint64(round)+80)); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Minute)
		if _, _, err := r.Advance(now); err != nil {
			t.Fatal(err)
		}
		touched, err := r.SnapshotDeltaInto(arena)
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 && touched > 3 {
			t.Fatalf("round %d: fold touched %d components, want <= 3", round, touched)
		}
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshal(t, arena.State()), marshal(t, snap)) {
			t.Fatalf("round %d: arena diverges from Snapshot", round)
		}
	}
	// Idle fold: nothing moved, nothing folded.
	touched, err := r.SnapshotDeltaInto(arena)
	if err != nil {
		t.Fatal(err)
	}
	if touched != 0 {
		t.Fatalf("idle fold touched %d components", touched)
	}
}

// TestWindowArenaSurfacesFoldErrors pins satellite behavior across the
// layers: a fold that would produce garbage (here, an expiry unmerge
// against tampered arena state) errors out via the Unmerge underflow
// guard, un-primes the arena instead of publishing negative counters,
// and the next fold recaptures cold and correct.
func TestWindowArenaSurfacesFoldErrors(t *testing.T) {
	p, err := core.New(core.InpPS, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(p, Options{
		Window: 2 * time.Minute,
		Bucket: time.Minute,
		Start:  testStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	reps := windowReports(t, p, 150, 91)
	if err := r.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Advance(testStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	arena := r.NewSnapshotArena()
	if _, err := r.SnapshotDeltaInto(arena); err != nil {
		t.Fatal(err)
	}
	// Tamper: drain the arena's cumulative state behind its back, so
	// the held bucket's eventual expiry unmerge has nothing to
	// subtract from.
	drained := p.NewAggregator()
	if err := core.ConsumeAll(drained, reps); err != nil {
		t.Fatal(err)
	}
	if err := core.UnmergeAggregators(arena.State(), drained); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Advance(testStart.Add(3 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SnapshotDeltaInto(arena); err == nil {
		t.Fatal("fold over tampered arena state succeeded")
	}
	if arena.Primed() {
		t.Fatal("arena still primed after a failed fold")
	}
	if _, err := r.SnapshotDeltaInto(arena); err != nil {
		t.Fatalf("cold recapture after failed fold: %v", err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, arena.State()), marshal(t, snap)) {
		t.Fatal("cold recapture diverges from Snapshot")
	}
}

// TestWindowSeedRecovered: recovered state is retained for a full
// window after restart, then retired like any sealed bucket.
func TestWindowSeedRecovered(t *testing.T) {
	p, err := core.New(core.MargHT, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := p.NewAggregator()
	recReps := windowReports(t, p, 400, 71)
	if err := core.ConsumeAll(rec, recReps); err != nil {
		t.Fatal(err)
	}
	recBytes := marshal(t, rec)
	r, err := NewRing(p, Options{
		Window: 3 * time.Minute,
		Bucket: time.Minute,
		Start:  testStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SeedRecovered(rec); err != nil {
		t.Fatal(err)
	}
	if r.N() != 400 {
		t.Fatalf("seeded N %d, want 400", r.N())
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, snap), recBytes) {
		t.Fatal("seeded window diverges from the recovered state")
	}
	// Two rotations: still inside the window.
	if _, _, err := r.Advance(testStart.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if r.N() != 400 {
		t.Fatalf("recovered state dropped early: n=%d", r.N())
	}
	// The third rotation completes a full window: recovered state
	// retires.
	if _, _, err := r.Advance(testStart.Add(3 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if r.N() != 0 {
		t.Fatalf("recovered state retained past the window: n=%d", r.N())
	}
}

// noDeltaAgg hides Unmerge and CopyStateFrom from a protocol
// aggregator; noDeltaProto builds such aggregators.
type noDeltaAgg struct{ core.Aggregator }

type noDeltaProto struct{ core.Protocol }

func (p noDeltaProto) NewAggregator() core.Aggregator {
	return noDeltaAgg{p.Protocol.NewAggregator()}
}

// TestWindowRejectsNonDeltaProtocol: expiry is an Unmerge, so a
// protocol without exact folds cannot be windowed.
func TestWindowRejectsNonDeltaProtocol(t *testing.T) {
	p, err := core.New(core.InpRR, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRing(noDeltaProto{p}, Options{Window: time.Minute, Bucket: time.Minute}); err == nil {
		t.Fatal("ring accepted a protocol without unmerge support")
	}
	// Config validation.
	if _, err := NewRing(p, Options{Window: time.Minute, Bucket: 0}); err == nil {
		t.Fatal("zero bucket accepted")
	}
	if _, err := NewRing(p, Options{Window: 90 * time.Second, Bucket: time.Minute}); err == nil {
		t.Fatal("window not a multiple of bucket accepted")
	}
}

// TestWindowConcurrentRotation hammers concurrent batch ingestion,
// rotation, snapshots, and delta folds; the assertions are in the race
// detector plus an exactness check after the writers quiesce.
func TestWindowConcurrentRotation(t *testing.T) {
	p, err := core.New(core.InpHT, windowTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(p, Options{
		Window: 4 * time.Minute,
		Bucket: time.Minute,
		Shards: 4,
		Start:  testStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	reps := windowReports(t, p, 6000, 17)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * 2000; lo < (w+1)*2000; lo += 200 {
				if err := r.ConsumeBatch(reps[lo : lo+200]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		now := testStart
		for i := 0; i < 40; i++ {
			now = now.Add(20 * time.Second)
			if _, _, err := r.Advance(now); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		arena := r.NewSnapshotArena()
		for i := 0; i < 30; i++ {
			if _, err := r.SnapshotDeltaInto(arena); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := r.Snapshot(); err != nil {
				t.Error(err)
				return
			}
			_ = r.N()
			_ = r.Status()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiesced: the arena fold and the full snapshot must agree.
	arena := r.NewSnapshotArena()
	if _, err := r.SnapshotDeltaInto(arena); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, arena.State()), marshal(t, snap)) {
		t.Fatal("arena diverged from Snapshot after concurrent rotation")
	}
}
