package window

import (
	"ldpmarginals/internal/metrics"
)

// RegisterMetrics attaches the ring's continual-release vitals to r.
// Everything derives from state the ring already maintains — the
// rotation/expiry atomics and the sealed/live counts — so the ingest and
// rotation paths gain no new work; the sealed-bucket gauge takes the
// ring's read lock at scrape time only.
func (r *Ring) RegisterMetrics(reg *metrics.Registry) {
	reg.MustCounterFunc("ldp_window_rotations_total", "Bucket boundaries crossed (live bucket seals).", nil,
		func() float64 { return float64(r.rotated.Load()) })
	reg.MustCounterFunc("ldp_window_expired_buckets_total", "Buckets retired from the window (one exact Unmerge fold each).", nil,
		func() float64 { return float64(r.expired.Load()) })
	reg.MustGaugeFunc("ldp_window_sealed_buckets", "Retained non-empty sealed buckets.", nil,
		func() float64 {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return float64(len(r.sealed))
		})
	reg.MustGaugeFunc("ldp_window_sealed_reports", "Reports held by sealed buckets still inside the window.", nil,
		func() float64 { return float64(r.sealedN.Load()) })
	reg.MustGaugeFunc("ldp_window_live_reports", "Reports in the live (unsealed) bucket.", nil,
		func() float64 { return float64(r.cur.Load().N()) })
}
