// Package window turns the cumulative aggregation core into a continual
// release: a ring of time-bucketed sub-aggregators in front of
// core.ShardedAggregator, answering "marginals over the last W of wall
// time" instead of "marginals since the collection started".
//
// Incoming reports land in the live bucket (a ShardedAggregator, so
// ingestion keeps its lock-free fan-out). When the live bucket's time
// span ends it is sealed: snapshotted once, merged into the ring's
// cumulative sealed-window aggregator, and frozen — sealed bucket state
// is immutable for the rest of its life. When a sealed bucket slides
// out of the window it is expired by a single Unmerge fold of that same
// frozen state, the exact integer inverse of its seal-time Merge. A
// bucket's whole retire path therefore costs one fold of O(state), not
// a rebuild of O(window), and because every protocol aggregator is an
// integer counter vector with a canonical codec, a window that still
// covers every bucket is bit-identical to a single cumulative
// aggregator fed the same reports.
//
// The ring is a view.Source and view.DeltaSource: the engine's
// incremental refresh advances a window arena by folding only what
// changed — newly sealed buckets merge, expired buckets unmerge, and
// the live bucket refolds only when its version moved — so a
// sliding-window epoch publish after a bucket expiry costs one Unmerge
// fold plus the nonlinear build stage.
//
// Windowed mode requires a protocol whose aggregators support exact
// unmerge folds (all six core protocols do); NewRing rejects the rest.
package window

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/trace"
)

// Options configures a Ring.
type Options struct {
	// Window is the sliding window span; must be a positive multiple of
	// Bucket. The ring retains Window/Bucket buckets including the live
	// one, so coverage slides between Window-Bucket and Window of wall
	// time as the live bucket fills.
	Window time.Duration
	// Bucket is the rotation granularity: the live bucket seals every
	// Bucket of wall time, and expiry retires state one Bucket at a
	// time.
	Bucket time.Duration
	// Shards is the live bucket's ShardedAggregator width; values < 1
	// select 1.
	Shards int
	// Start anchors the first bucket's span; the zero value selects
	// time.Now().
	Start time.Time
}

// bucket is one sealed time slot: an immutable sequential snapshot of
// the reports that landed in its span. id is unique for the ring's
// lifetime (seq alone is not: a recovery-seeded bucket shares the seq
// of the bucket sealed in the same slot).
type bucket struct {
	id    uint64
	seq   uint64
	n     int
	agg   core.Aggregator
	start time.Time
	end   time.Time
}

// Ring is the time-bucketed sliding-window aggregator. Ingestion and
// reads share a read lock (the live ShardedAggregator serializes
// internally); rotation takes the write lock, so a report never lands
// in a bucket that is already sealed.
type Ring struct {
	p       core.Protocol
	opts    Options
	buckets uint64 // window capacity in buckets, including the live one

	mu       sync.RWMutex
	cur      atomic.Pointer[core.ShardedAggregator] // live bucket; replaced on seal
	curSeq   uint64
	curStart time.Time
	nextID   uint64
	sealed   []*bucket       // retained sealed buckets, seq-ascending
	cum      core.Aggregator // merge of every retained sealed bucket

	sealedN atomic.Int64
	ver     atomic.Uint64 // bumps after every state change; read-before-snapshot label
	rotated atomic.Uint64 // total bucket boundaries crossed
	expired atomic.Uint64 // total buckets retired from the window
}

// NewRing builds a ring over p. The protocol must support exact delta
// folds (Unmerge + state copy): expiry is an Unmerge of sealed state.
func NewRing(p core.Protocol, opts Options) (*Ring, error) {
	if opts.Bucket <= 0 {
		return nil, errors.New("window: bucket span must be positive")
	}
	if opts.Window <= 0 || opts.Window%opts.Bucket != 0 {
		return nil, fmt.Errorf("window: window %v must be a positive multiple of bucket %v", opts.Window, opts.Bucket)
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	r := &Ring{
		p:       p,
		opts:    opts,
		buckets: uint64(opts.Window / opts.Bucket),
		cum:     p.NewAggregator(),
	}
	// curSeq starts at the window capacity so seq arithmetic never
	// underflows; the slot index is relative, only differences matter.
	r.curSeq = r.buckets
	r.curStart = opts.Start
	live := core.NewSharded(p, opts.Shards)
	if !live.SupportsDeltaSnapshots() {
		return nil, fmt.Errorf("window: protocol %s does not support exact unmerge folds; windowed release needs one of the core protocols", p.Name())
	}
	r.cur.Store(live)
	return r, nil
}

// Window returns the configured window span.
func (r *Ring) Window() time.Duration { return r.opts.Window }

// Bucket returns the configured bucket span.
func (r *Ring) Bucket() time.Duration { return r.opts.Bucket }

// Consume routes one report into the live bucket.
func (r *Ring) Consume(rep core.Report) error {
	r.mu.RLock()
	err := r.cur.Load().Consume(rep)
	r.mu.RUnlock()
	if err == nil {
		r.ver.Add(1)
	}
	return err
}

// ConsumeBatch routes a batch into the live bucket. Partial
// consumption surfaces as core.BatchError, exactly like the sharded
// aggregator's contract.
func (r *Ring) ConsumeBatch(reps []core.Report) error {
	r.mu.RLock()
	err := r.cur.Load().ConsumeBatch(reps)
	r.mu.RUnlock()
	r.ver.Add(1)
	return err
}

// N returns the report count inside the window: sealed buckets plus the
// live one. Lock-free; during a rotation the two terms may be one
// report apart for the duration of the swap.
func (r *Ring) N() int {
	return int(r.sealedN.Load()) + r.cur.Load().N()
}

// Version is a monotonic state-change label with the read-before-
// snapshot guarantee: it is bumped after a mutation lands, so a label
// read before a snapshot can only trail the snapshot's state.
func (r *Ring) Version() uint64 { return r.ver.Load() }

// Advance rotates the ring up to now: seals every live bucket whose
// span has ended and expires every sealed bucket that slid out of the
// window. It returns how many bucket boundaries were crossed and how
// many retained buckets were retired. Callers drive it from a ticker;
// between calls the ring simply keeps filling the live bucket, so a
// late Advance only defers (never loses) rotation.
func (r *Ring) Advance(now time.Time) (rotated, expired int, err error) {
	return r.AdvanceContext(context.Background(), now)
}

// AdvanceContext is Advance with trace propagation: when ctx carries
// an active span, the seal loop is recorded as a "window.seal" child
// (buckets sealed and reports frozen as attrs) and the expiry fold as
// a "window.expire" child (buckets expired). No-op advances record
// nothing.
func (r *Ring) AdvanceContext(ctx context.Context, now time.Time) (rotated, expired int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := now.Sub(r.curStart)
	if elapsed < r.opts.Bucket {
		return 0, 0, nil
	}
	steps := uint64(elapsed / r.opts.Bucket)
	if steps > r.buckets {
		// The whole window passed while nobody rotated: every retained
		// bucket and the live contents are out of the window. Reset
		// wholesale instead of folding bucket by bucket.
		_, span := trace.StartSpan(ctx, "window.expire")
		expired = r.dropAllLocked()
		r.curSeq += steps
		r.curStart = r.curStart.Add(time.Duration(steps) * r.opts.Bucket)
		rotated = int(r.buckets)
		r.rotated.Add(steps)
		r.ver.Add(1)
		span.SetAttr("buckets", expired)
		span.SetAttr("drop_all", true)
		span.End()
		return rotated, expired, nil
	}
	liveBefore := int64(r.cur.Load().N())
	_, seal := trace.StartSpan(ctx, "window.seal")
	for i := uint64(0); i < steps; i++ {
		if err := r.sealLocked(); err != nil {
			seal.SetAttr("error", err)
			seal.End()
			return rotated, expired, err
		}
		rotated++
	}
	seal.SetAttr("buckets", rotated)
	seal.SetAttr("reports_frozen", liveBefore-int64(r.cur.Load().N()))
	seal.End()
	_, exp := trace.StartSpan(ctx, "window.expire")
	n, err := r.expireLocked()
	expired += n
	exp.SetAttr("buckets", n)
	if err != nil {
		exp.SetAttr("error", err)
		exp.End()
		return rotated, expired, err
	}
	exp.End()
	if rotated+expired > 0 {
		r.ver.Add(1)
	}
	return rotated, expired, nil
}

// sealLocked closes the live bucket's time slot. A non-empty bucket is
// snapshotted once, merged into the sealed-window cumulative state, and
// frozen; an empty slot just advances the sequence, keeping the same
// live aggregator.
func (r *Ring) sealLocked() error {
	live := r.cur.Load()
	if live.N() > 0 {
		snap, err := live.Snapshot()
		if err != nil {
			return fmt.Errorf("window: sealing bucket %d: %w", r.curSeq, err)
		}
		if err := r.cum.Merge(snap); err != nil {
			return fmt.Errorf("window: sealing bucket %d: %w", r.curSeq, err)
		}
		r.sealed = append(r.sealed, &bucket{
			id:    r.nextID,
			seq:   r.curSeq,
			n:     snap.N(),
			agg:   snap,
			start: r.curStart,
			end:   r.curStart.Add(r.opts.Bucket),
		})
		r.nextID++
		r.sealedN.Add(int64(snap.N()))
		r.cur.Store(core.NewSharded(r.p, r.opts.Shards))
	}
	r.curSeq++
	r.rotated.Add(1)
	r.curStart = r.curStart.Add(r.opts.Bucket)
	return nil
}

// expireLocked retires every sealed bucket that slid out of the window:
// one Unmerge fold per bucket, the exact inverse of its seal-time
// Merge.
func (r *Ring) expireLocked() (int, error) {
	n := 0
	for len(r.sealed) > 0 && r.sealed[0].seq+r.buckets <= r.curSeq {
		b := r.sealed[0]
		if err := core.UnmergeAggregators(r.cum, b.agg); err != nil {
			return n, fmt.Errorf("window: expiring bucket %d: %w", b.seq, err)
		}
		r.sealed[0] = nil
		r.sealed = r.sealed[1:]
		r.sealedN.Add(-int64(b.n))
		r.expired.Add(1)
		n++
	}
	return n, nil
}

// dropAllLocked discards every retained bucket and the live contents.
func (r *Ring) dropAllLocked() int {
	n := len(r.sealed)
	for i := range r.sealed {
		r.sealed[i] = nil
	}
	r.sealed = r.sealed[:0]
	r.expired.Add(uint64(n))
	r.sealedN.Store(0)
	r.cum = r.p.NewAggregator()
	if r.cur.Load().N() > 0 {
		r.cur.Store(core.NewSharded(r.p, r.opts.Shards))
		n++
		r.expired.Add(1)
	}
	return n
}

// SeedRecovered folds crash-recovered state into the ring as one sealed
// bucket sharing the live slot's sequence, so it is retained for a full
// window after restart — the recovered reports' true arrival times are
// gone, and keeping them the maximum plausible span is the conservative
// choice (a window covering every bucket stays bit-identical to the
// cumulative state across the restart). The ring takes ownership of
// state; call before serving, ahead of the first Advance.
func (r *Ring) SeedRecovered(state core.Aggregator) error {
	if state == nil || state.N() == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.cum.Merge(state); err != nil {
		return fmt.Errorf("window: seeding recovered state: %w", err)
	}
	r.sealed = append(r.sealed, &bucket{
		id:    r.nextID,
		seq:   r.curSeq,
		n:     state.N(),
		agg:   state,
		start: r.curStart,
		end:   r.curStart,
	})
	r.nextID++
	r.sealedN.Add(int64(state.N()))
	r.ver.Add(1)
	return nil
}

// Snapshot cuts a private aggregator holding the whole window: the
// sealed cumulative state plus a live-bucket snapshot. It implements
// view.Source.
func (r *Ring) Snapshot() (core.Aggregator, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.p.NewAggregator()
	if err := out.Merge(r.cum); err != nil {
		return nil, fmt.Errorf("window: snapshot: %w", err)
	}
	live, err := r.cur.Load().Snapshot()
	if err != nil {
		return nil, fmt.Errorf("window: snapshot: %w", err)
	}
	if err := out.Merge(live); err != nil {
		return nil, fmt.Errorf("window: snapshot: %w", err)
	}
	return out, nil
}

// Status is a point-in-time description of the ring for /status and
// /view/status reporting.
type Status struct {
	Window        time.Duration
	Bucket        time.Duration
	Buckets       int // window capacity in buckets, including the live one
	SealedBuckets int // retained non-empty sealed buckets
	SealedN       int
	LiveN         int
	Rotations     uint64 // bucket boundaries crossed since start
	Expired       uint64 // buckets retired from the window since start
}

// Status reports the ring's current shape.
func (r *Ring) Status() Status {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Status{
		Window:        r.opts.Window,
		Bucket:        r.opts.Bucket,
		Buckets:       int(r.buckets),
		SealedBuckets: len(r.sealed),
		SealedN:       int(r.sealedN.Load()),
		LiveN:         r.cur.Load().N(),
		Rotations:     r.rotated.Load(),
		Expired:       r.expired.Load(),
	}
}
