package window

import (
	"errors"

	"ldpmarginals/internal/core"
)

// ringArena is the window's core.StateArena: a cumulative window
// aggregator advanced by folding only what moved since the last call.
// Sealed buckets are immutable, so the arena holds references to the
// very aggregators the ring sealed — expiring one later is an Unmerge
// of the identical object, the exact integer inverse of its merge. The
// live bucket is held as a private snapshot labeled by (aggregator
// identity, version): it refolds — one Unmerge plus one Merge — only
// when new reports landed or the bucket rotated.
type ringArena struct {
	owner  *Ring
	cum    core.Aggregator
	primed bool

	held map[uint64]core.Aggregator // bucket id -> sealed state folded into cum

	live      core.Aggregator // live-bucket snapshot folded into cum
	liveHeld  bool
	liveOwner *core.ShardedAggregator
	liveVer   uint64
}

// NewSnapshotArena returns a reusable delta arena over the ring, or nil
// when the protocol cannot back exact folds (the view engine then falls
// back to full snapshots). It implements view.DeltaSource.
func (r *Ring) NewSnapshotArena() core.StateArena {
	if !r.cur.Load().SupportsDeltaSnapshots() {
		return nil
	}
	return &ringArena{owner: r, cum: r.p.NewAggregator()}
}

func (a *ringArena) State() core.Aggregator { return a.cum }
func (a *ringArena) Primed() bool           { return a.primed }
func (a *ringArena) Reset()                 { a.primed = false }

// SnapshotDeltaInto advances the arena to the ring's current window
// state and returns how many components (buckets) were folded. On a
// fresh or Reset arena it re-derives the window from scratch,
// bit-identical to Snapshot. Any fold error un-primes the arena, so
// the next call recaptures cold instead of folding onto suspect state.
// It implements view.DeltaSource.
func (r *Ring) SnapshotDeltaInto(sa core.StateArena) (int, error) {
	a, ok := sa.(*ringArena)
	if !ok || a.owner != r {
		return 0, errors.New("window: arena does not belong to this ring")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !a.primed {
		return a.cold(r)
	}
	touched := 0
	fail := func(err error) (int, error) {
		a.primed = false
		return touched, err
	}
	// Sealed-set diff: unmerge buckets that expired, merge buckets
	// sealed since the last fold. Bucket ids are unique for the ring's
	// lifetime, so membership is exact.
	if len(a.held) != len(r.sealed) || touchedSetDiffers(a.held, r.sealed) {
		inWindow := make(map[uint64]bool, len(r.sealed))
		for _, b := range r.sealed {
			inWindow[b.id] = true
		}
		for id, contrib := range a.held {
			if inWindow[id] {
				continue
			}
			if err := core.UnmergeAggregators(a.cum, contrib); err != nil {
				return fail(err)
			}
			delete(a.held, id)
			touched++
		}
		for _, b := range r.sealed {
			if _, ok := a.held[b.id]; ok {
				continue
			}
			if err := core.MergeAggregators(a.cum, b.agg); err != nil {
				return fail(err)
			}
			a.held[b.id] = b.agg
			touched++
		}
	}
	// Live bucket: refold only when the aggregator was replaced (a
	// rotation) or its version moved (new reports). The version label
	// is read before the snapshot, so it can only trail — a report
	// racing the fold is picked up by the next one.
	cur := r.cur.Load()
	ver := cur.Version()
	if a.liveOwner == cur && a.liveVer == ver {
		return touched, nil
	}
	changed := false
	if a.liveHeld {
		if err := core.UnmergeAggregators(a.cum, a.live); err != nil {
			return fail(err)
		}
		a.liveHeld = false
		changed = true
	}
	if cur.N() > 0 {
		snap, err := cur.Snapshot()
		if err != nil {
			return fail(err)
		}
		if err := core.MergeAggregators(a.cum, snap); err != nil {
			return fail(err)
		}
		a.live = snap
		a.liveHeld = true
		changed = true
	}
	a.liveOwner, a.liveVer = cur, ver
	if changed {
		touched++
	}
	return touched, nil
}

// touchedSetDiffers reports whether held and sealed cover different
// bucket-id sets, assuming equal length (the caller checks length
// first, so one containment test suffices).
func touchedSetDiffers(held map[uint64]core.Aggregator, sealed []*bucket) bool {
	for _, b := range sealed {
		if _, ok := held[b.id]; !ok {
			return true
		}
	}
	return false
}

// cold re-derives the whole window into a fresh cumulative aggregator:
// every sealed bucket merged in seq order, then the live snapshot —
// the same integer sums as Snapshot, hence bit-identical state.
func (a *ringArena) cold(r *Ring) (int, error) {
	a.cum = r.p.NewAggregator()
	a.held = make(map[uint64]core.Aggregator, len(r.sealed))
	a.liveHeld = false
	touched := 0
	for _, b := range r.sealed {
		if err := core.MergeAggregators(a.cum, b.agg); err != nil {
			return touched, err
		}
		a.held[b.id] = b.agg
		touched++
	}
	cur := r.cur.Load()
	ver := cur.Version()
	if cur.N() > 0 {
		snap, err := cur.Snapshot()
		if err != nil {
			return touched, err
		}
		if err := core.MergeAggregators(a.cum, snap); err != nil {
			return touched, err
		}
		a.live = snap
		a.liveHeld = true
		touched++
	}
	a.liveOwner, a.liveVer = cur, ver
	a.primed = true
	return touched, nil
}
