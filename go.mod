module ldpmarginals

go 1.24
